// Package hyrise is a Go reproduction of the delta-merge architecture of
// "Fast Updates on Read-Optimized Databases Using Multi-Core CPUs"
// (Krueger et al., VLDB 2011): an in-memory, dictionary-compressed column
// store that sustains transactional update rates by accumulating writes in
// per-column uncompressed delta partitions and periodically folding them
// into the compressed main partitions with a linear-time, multi-core merge.
//
// # Quick start
//
// Storage comes in two topologies — a flat table, and a table
// hash-partitioned by a key column across N independent shards — and both
// implement the one Store interface, so application code is written once:
//
//	var s hyrise.Store
//	s, _ = hyrise.NewTable("sales", schema)                      // flat
//	s, _ = hyrise.NewShardedTable("sales", schema, "order_id", 8) // or sharded
//
//	s.Insert([]any{uint64(1), uint32(3), "widget"})
//	h, _ := hyrise.ColumnOf[uint64](s, "order_id")
//	rows := h.Lookup(1)
//	res, _ := hyrise.Query(s, []hyrise.Filter{
//		{Column: "product", Op: hyrise.FilterEq, Value: "widget"},
//	}, []string{"order_id"})
//	s.RequestMerge(context.Background(), hyrise.MergeOptions{})
//
//	ms := hyrise.NewScheduler(s, hyrise.SchedulerConfig{Fraction: 0.05})
//	ms.Start() // merges each partition when its delta outgrows the trigger
//
//	view := s.Snapshot()      // freeze a consistent read view (one atomic op)
//	old := h.LookupAt(view, 1) // reads under the view never change
//	view.Release()             // unpin so merges can garbage-collect again
//
//	hyrise.Save(s, w)         // snapshot either topology
//	s2, _ := hyrise.Load(r)   // topology auto-detected from the header
//
// Tables are insert-only (paper §3): updates append new row versions and
// invalidate the old ones, deletes only invalidate, and the version
// history remains queryable until garbage collection reclaims it (see
// below).  The merge runs online — writes accumulate in a second delta
// while it runs, and the merged table is committed atomically under a
// brief lock.
//
// # Visibility and snapshots
//
// Visibility is multi-versioned: every row records the epoch it was
// inserted (begin) and the epoch it was invalidated (end; 0 while it is
// the current version), stamped from the store's epoch clock.  A row is
// visible at epoch E iff begin <= E and (end == 0 or end > E).  The clock
// advances only when Store.Snapshot captures it — one atomic fetch-add, no
// locks, no coordination with writers — so all mutations between two
// captures share an epoch and the write path pays a single atomic load.
//
// The epoch lifecycle per mutation: an insert stamps begin with the
// current epoch; a delete stamps end; an update stamps the old version's
// end and the new version's begin with the SAME epoch, so every snapshot
// sees exactly one of the two versions.  A key-changing update that moves
// a row between shards performs the invalidate and the re-insert under
// both shard locks with one stamp — atomic to snapshots too.  A row
// inserted and deleted between two captures is visible to no snapshot.
//
// What a snapshot sees: reads through a ReadView (LookupAt, RangeAt,
// ScanAt, SumAt/MinAt/MaxAt, CountEqualAt, QueryAt, ValidRowsAt,
// VisibleAt) return exactly the rows visible at the captured epoch, no
// matter how many inserts, updates, deletes, cross-shard moves or merges
// commit afterwards.  On a sharded table the epoch is shared by every
// shard, so one capture freezes a cross-shard-consistent state — the
// fan-out reads agree with each other even mid-reorganization.  Reads
// without a view ("latest") see current versions only and are equivalent
// to a view at epoch infinity.
//
// Interaction with the merge: merges move rows between partitions but
// never renumber them, change their values or touch their epochs, so
// in-flight views read identically before, during and after any merge
// (including aborted ones).  Snapshot persistence (format v4) records the
// epoch columns, the clock, the stable row-id map and the GC state, so
// version history, row ages and retired ids survive a Save/Load round
// trip; v1-v3 snapshot files still load (v1/v2 with their history
// collapsed to load time).
//
// Views are plain values: cheap to copy, valid for the life of the store.
// One caution: Scan/ScanAt callbacks run under the table's read lock and
// must not call back into the table — collect row ids and read other
// columns after the scan (row versions are immutable).
//
// # Garbage collection
//
// Pure insert-only storage grows without bound under a steady update
// workload, so the merge doubles as the garbage collector (on by default;
// Store.SetGC(false) restores keep-everything behavior).  When a merge
// freezes its delta it snapshots the exact set of live pinned epochs and
// keeps a dead version only if some pin can still see it — begin <= pin
// and (end == 0 || end > pin) for at least one pinned epoch; every other
// invalidated version at or below the newest safe epoch is dropped
// instead of copied into the new main.  This per-pin interval rule is
// strictly more precise than the classic oldest-live-reader watermark
// (Larson et al., VLDB 2011): one long-lived pin retains only the
// versions visible at its own epoch, not every version invalidated since
// it was taken, so history churned between an old pin and the present is
// reclaimed rather than accumulating behind the oldest reader.
// MergeReport.DeadAtFreeze counts the dead versions each merge saw and
// MergeReport.LegacyReclaimable what the old watermark rule would have
// freed — their difference against RowsReclaimed is the precision win.
// Dictionary values referenced only by reclaimed versions are dropped
// with them.
//
// The pin lifecycle: Store.Snapshot captures and pins in one step; call
// ReadView.Release when done reading, or the versions visible at the
// view's epoch stay retained forever.  Copies of a view share one pin.
// The zero ReadView and reads without a view never pin.
//
// Row ids are stable across reclamation: they are resolved through an
// id-to-slot indirection, merges compact the physical slots underneath,
// and a reclaimed id is retired — never reused — with every operation on
// it failing with ErrRowInvalid exactly like a merely invalidated row.
// StoreStats reports the cumulative RetiredRows and ReclaimedBytes, and
// MergeReport.RowsReclaimed counts what each merge dropped.
//
// Over the network the same rules apply to snapshot tokens: a registered
// token pins the GC watermark server-side until released, and the
// registry is bounded (ServerOptions.MaxSnapshots, hyrised
// -max-snapshots) so leaked tokens cannot pin history forever — past the
// cap, Snapshot fails with client.ErrTooManySnapshots.  hyrised runs GC
// by default (-gc=false disables it) and releases all registered tokens
// on shutdown before its final compacting merge.
//
// # Topology semantics
//
// A flat table hands out dense, insertion-ordered row ids and gives one
// atomic online merge over the whole table.
//
// A sharded table multiplies both halves of the paper's central trade:
// inserts route by key hash and contend only on their shard, and
// RequestMerge fans the multi-core merge out across shards in parallel,
// each with a slice of the thread budget.  Every shard's merge is
// individually online and atomic; cross-shard consistency comes from
// snapshots (see above).  Global row ids are stable and encode the owning
// shard; they are not dense and not in global insertion order.  Updates
// that change the key column may relocate a row to another shard.
//
// # Online resharding
//
// ShardedTable.Reshard(ctx, n) changes the active shard count while
// readers and writers keep running.  Fresh partitions are created and
// wired (op log, GC mode, secondary indexes), a reshard-begin op is
// logged, and writes atomically switch to routing into the new window
// while the old partitions are sealed against inserts.  A migration pass
// then drains every live row from the sealed partitions into its new
// home with MoveRow — invalidate at the old slot, re-insert at the new,
// same global row id — so concurrent reads resolve each row exactly once
// throughout.  Finally an epoch-stamped cutover op publishes the new map
// version; ReshardReport carries the counts and timings.
//
// To a writer, a migrated row looks exactly like one relocated by a
// concurrent key-changing update: its old global row id fails with
// ErrRowInvalid and a key lookup finds the row under its new id.  Pinned
// snapshots taken before the reshard keep reading bit-identical results
// (the pre-move versions stay in the sealed partitions for as long as a
// pin can see them), and both marker ops flow through the op log so
// replication followers
// replay the same migration and converge on the same topology.  Sealed
// pre-reshard partitions stick around as empty husks (Stats and
// ServerStats report active shards and physical partitions separately);
// persisted snapshots record the active window and map version, and a
// canceled migration cuts over anyway — rows not yet moved stay readable
// in their sealed partitions and migrate on the next reshard.
//
// Over the network the same operation is client.Reshard (protocol
// version 5), and a running hyrised daemon is resharded online with
//
//	$ hyrised -addr HOST:PORT -reshard N
//
// # Vectorized execution
//
// Read-side operators never walk a compressed column one row at a time.
// Scans, lookups, counts and aggregates (Lookup/LookupAt, Range/RangeAt,
// Scan/ScanAt, CountEqual/CountEqualAt, SumAt/MinAt/MaxAt, and the Query
// probe path) run on internal/kernel batch kernels that evaluate
// predicates directly on the bit-packed words of the main partition:
// packed widths that divide the 64-bit word are matched with word-at-a-time
// SWAR compares (8 lanes per word at 8 bits), other widths are decoded
// block-at-a-time (512 values) into a reused scratch buffer and compared
// there — never through a per-row Get.
//
// Operators compose through selection vectors: a predicate kernel emits
// the ascending positions of matching rows, the epoch-visibility kernel
// filters such a vector in place by fusing the begin/end epoch compares
// (branchless, one pass), and the aggregate kernels consume the surviving
// positions — density-adaptive between block decode and point reads.  The
// delta partitions stay row-wise (they are uncompressed and small by
// construction; the merge scheduler bounds their fraction), so a scan is
// a kernel pass over main plus a short scalar tail over the deltas.
//
// The same batch orientation drives the write side: with
// MergeOptions{Threads: N, Strategy: IntraColumn} a garbage-collecting
// merge range-partitions each column's rewrite across N workers emitting
// disjoint word-aligned output slices, so one oversized shard no longer
// serializes compaction.  CI tracks both sides in BENCH_kernels.json
// (scalar-vs-kernel scan throughput, merge thread scaling).
//
// # Secondary indexes
//
// The scan kernels make full-column predicates fast, but a selective
// point or range read still pays a pass over every main row.
// CreateIndex builds a merge-maintained group-key index on one column:
// for the dictionary-encoded main partition, a posting list of row
// positions per value code (two counting-sort passes over the packed
// codes — no per-row comparisons), while the delta partitions are
// already covered by their per-column CSB+ trees.  With an index
// attached, Lookup/LookupAt, Range/RangeAt, CountEqual/CountEqualAt and
// the Query planner's driving predicate read the posting buckets
// instead of scanning, then apply the same epoch-visibility kernel —
// indexed and scanned reads return byte-identical results at every
// epoch, which the differential suites assert under concurrent writes,
// merges and GC.
//
// The index is maintained by the merge itself: each merge rebuilds the
// posting lists over the new main as a side product of the code rewrite
// and publishes them atomically with it, so readers always observe a
// main/index pair that agrees and an aborted merge leaves the old pair
// untouched.  Two caveats: posting lists store positions in the current
// main (not row ids, and never filtered in place — visibility filtering
// works on copies), and indexes are in-memory only — they are absent
// from the persist format and the replication stream, so a reloaded or
// re-bootstrapped store starts unindexed (hyrised -index re-creates
// them at startup).  IndexStats reports per-column posting counts,
// sizes and rebuild times; on a sharded store CreateIndex fans out and
// stats aggregate across shards.
//
// # Network serving
//
// Either topology can serve real concurrent client traffic as a
// standalone database server.  The cmd/hyrised daemon owns a store
// (fresh from -schema, or loaded from its -snapshot file), serves the
// full Store surface over a length-prefixed binary protocol on TCP,
// keeps delta fractions bounded with a background merge scheduler while
// traffic flows, and on SIGTERM drains in-flight requests, compacts and
// saves the snapshot it will reload at the next start:
//
//	$ hyrised -addr :4860 -shards 4 \
//	    -schema 'order_id:uint64,qty:uint32,product:string' \
//	    -snapshot sales.hyr
//
// The Go client (package hyrise/client, re-exported here as Dial) pools
// connections, pipelines batches and rehydrates the library's typed
// errors.  Snapshot tokens are registered server-side, so pinned reads
// stay consistent across pooled connections — and across clients:
//
//	c, _ := hyrise.Dial("localhost:4860")
//	id, _ := c.Insert([]any{uint64(1), uint32(3), "widget"})
//	snap, _ := c.Snapshot()             // frozen, cross-shard consistent
//	rows, _ := c.LookupAt(snap, "order_id", 1)
//	sum, _ := c.SumAt(snap, "qty")      // agrees with rows, despite writers
//	c.Release(snap)
//
// To embed the server instead of running the daemon, hand a Store and a
// listener to Serve; the returned DBServer drains gracefully via
// Shutdown.  The wire protocol is documented in internal/server.
//
// # Replication
//
// A primary scales its read side out to followers by streaming its
// operation log.  EnableReplication attaches an epoch-stamped op log to
// the store's write path — every insert, update, delete and cross-shard
// move is recorded with the epoch it committed under — and a server
// given that log (ServerOptions.OpLog, or hyrised -replicate) lets
// followers subscribe over the ordinary listener.  Follow bootstraps a
// follower: it streams the primary's snapshot into a fresh local store,
// applies the op tail, and keeps applying — and reconnecting — until
// closed.  Because replayed ops carry the primary's epochs and row ids,
// a follower's store is bit-identical to the primary's at every applied
// epoch: reads at epoch E answer exactly what the primary answers at E.
//
//	olog, _ := hyrise.EnableReplication(st, 0)        // primary side
//	hyrise.Serve(l, st, hyrise.ServerOptions{OpLog: olog})
//
//	rep, _ := hyrise.Follow(primaryAddr, hyrise.ReplicaOptions{})
//	hyrise.Serve(fl, hyrise.FollowStore(rep),         // follower side
//	    hyrise.ServerOptions{Replica: rep})
//
// A follower server is read-only (writes fail with client.ErrReadOnly)
// and advances Replica.AppliedEpoch only on the primary's heartbeats, so
// the epoch it reports is always exact.  The pooled client routes reads
// transparently: client.Options.Followers lists follower addresses,
// snapshot reads go to any follower that has applied the snapshot's
// epoch (pinned remotely, so the answer equals the primary's), latest
// reads go to any follower lagging at most client.Options.MaxStaleness
// epochs, and everything else — including any follower failure — falls
// back to the primary.  Client.ServerStats exposes role, replication lag
// and op-log bounds for monitoring.  The same topology runs as daemons
// with hyrised -replicate and hyrised -follow; see examples/replication
// for the whole wiring in one process.
//
// # Observability
//
// A running server measures itself: every layer feeds a dependency-free
// metric registry (internal/metrics) of atomic counters, gauges and
// power-of-two-bucket latency histograms.  Series are named
// hyrise_<subsystem>_<name>, with Prometheus conventions for units and
// suffixes (durations in seconds, cumulative counters ending in _total,
// histograms contributing _bucket/_sum/_count).  The instrumented
// subsystems:
//
//	hyrise_server_*   per-opcode request/error counters and latency
//	                  histograms, live connections, registered
//	                  snapshots, pipelined and parallel-executed
//	                  requests, slow ops
//	hyrise_merge_*    merge counts, rows merged/reclaimed, per-phase
//	                  (freeze/merge/commit) and wall durations
//	hyrise_store_*    main/delta rows, delta fill fraction, active
//	                  shards, physical partitions, shard-map version
//	hyrise_epoch_*    current epoch, pins, GC watermark
//	hyrise_gc_*       watermark, watermark age in epochs, rows retired,
//	                  dead versions seen vs. retained for live pins vs.
//	                  what the legacy watermark rule would have freed
//	hyrise_oplog_*    retained LSN bounds, entries, subscribers
//	hyrise_replica_*  applied/primary epochs, lag, applied LSN
//	hyrise_index_*    indexed vs. scanned read routing
//	hyrise_query_*    planner seeds, estimated vs. actual driving-
//	                  predicate rows, indexed seeds
//	hyrise_reshard_*  reshards run, rows migrated, wall and cutover
//	                  durations
//
// DBServer.Registry exposes the registry; DBServer.ObsHandler serves it
// as /metrics (Prometheus text exposition) alongside /healthz (role- and
// lag-aware readiness, with an optional min_epoch convergence bound) and
// /debug/pprof/*.  The hyrised daemon mounts that handler with
// -metrics-addr, logs ops slower than -slow-op-threshold as structured
// log/slog lines (opcode, duration, rows touched, snapshot epoch), and
// selects text or JSON logs with -log-format.  Remote processes read the
// same series over the data protocol via Client.Metrics, and
// Client.ServerStats carries uptime plus cumulative per-op counts.
//
// Overhead: instruments on the request path are lock-free atomics bound
// per opcode at server construction — no allocation, no map lookups, no
// label rendering per request — and scrapes snapshot without stopping
// writers.  The instrumented read path stays within a few percent of a
// server built with ServerOptions.NoMetrics, which disables collection
// entirely (nil-safe instruments compile to no-ops).
//
// The subpackages under internal implement the paper's substrate systems
// (bit-packed vectors, sorted dictionaries, CSB+ trees, the merge itself,
// the analytical cost model, workload generators and the experiment
// harness); this package re-exports the surface a downstream application
// needs.
package hyrise

import (
	"cmp"
	"io"

	"hyrise/internal/bench"
	"hyrise/internal/core"
	"hyrise/internal/csvload"
	"hyrise/internal/membench"
	"hyrise/internal/model"
	"hyrise/internal/query"
	"hyrise/internal/sched"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/workload"
)

// Value is the constraint on column value types: any ordered type; the
// built-in column types use uint32, uint64 and string.
type Value interface{ cmp.Ordered }

// Column types.
const (
	// Uint32 stores 4-byte integers (the paper's E_j = 4 configuration).
	Uint32 = table.Uint32
	// Uint64 stores 8-byte integers (E_j = 8, the common case).
	Uint64 = table.Uint64
	// String stores strings, modelled as E_j = 16 fixed-length values.
	String = table.String
)

// Type identifies a column's value type.
type Type = table.Type

// ColumnDef declares one column.
type ColumnDef = table.ColumnDef

// Schema is an ordered list of column definitions.
type Schema = table.Schema

// Table is a flat column-store table with main/delta partitions per
// column.  It implements Store.
type Table = table.Table

// NewTable creates an empty flat table.
func NewTable(name string, schema Schema) (*Table, error) {
	return table.New(name, schema)
}

// ShardedTable hash-partitions rows by a key column across N shards, each
// an independent Table with its own merge lifecycle.  It implements Store.
type ShardedTable = shard.Table

// NewShardedTable creates an empty sharded table hash-partitioned by the
// named key column.
func NewShardedTable(name string, schema Schema, key string, shards int) (*ShardedTable, error) {
	return shard.New(name, schema, key, shards)
}

// TableStats summarizes a flat table's storage (see Table.Stats); each
// partition entry of StoreStats is one of these.
type TableStats = table.Stats

// ColumnStats summarizes one column's storage.
type ColumnStats = table.ColumnStats

// ShardedStats aggregates per-shard storage statistics (ShardedTable.Stats).
type ShardedStats = shard.Stats

// ReshardReport summarizes one completed online reshard
// (ShardedTable.Reshard): shard counts before and after, rows migrated,
// phase timings, and the published shard-map version and cutover epoch.
type ReshardReport = shard.ReshardReport

// Merge configuration and results.
type (
	// MergeOptions configures RequestMerge (and Table.Merge).
	MergeOptions = table.MergeOptions
	// MergeReport summarizes a completed merge.  For a sharded merge,
	// Columns is nil and the counts aggregate all shards; per-shard
	// reports come from ShardedTable.MergeAll.
	MergeReport = table.Report
	// MergeStats holds one column's per-step merge timings.
	MergeStats = core.Stats
	// Algorithm selects the merge variant.
	Algorithm = core.Algorithm
	// MergeStrategy distributes threads across or within columns.
	MergeStrategy = table.Strategy
	// MergeAllOptions configures ShardedTable.MergeAll (per-shard merge
	// options plus a concurrency cap).
	MergeAllOptions = shard.MergeAllOptions
	// MergeAllReport summarizes a cross-shard parallel merge per shard.
	MergeAllReport = shard.MergeAllReport
)

// Merge algorithm variants.
const (
	// Optimized is the paper's linear-time merge with auxiliary
	// translation tables (§5.3) — the default.
	Optimized = core.Optimized
	// Naive is the baseline merge whose Step 2 binary-searches the merged
	// dictionary per tuple (§5.2).
	Naive = core.Naive
)

// Merge strategies (§6.2.1).
const (
	// AutoStrategy picks based on column count vs thread count.
	AutoStrategy = table.Auto
	// ColumnTasks parallelizes across columns via a task queue.
	ColumnTasks = table.ColumnTasks
	// IntraColumn parallelizes within each column.
	IntraColumn = table.IntraColumn
)

// Errors re-exported from the table layer.
var (
	ErrRowRange        = table.ErrRowRange
	ErrRowInvalid      = table.ErrRowInvalid
	ErrMergeInProgress = table.ErrMergeInProgress
	ErrNoColumn        = table.ErrNoColumn
	ErrArity           = table.ErrArity
)

// Scheduler supervises every partition of a Store independently, merging a
// partition when its delta grows past the configured fraction of its main.
// Create with NewScheduler, then Start.
type Scheduler = sched.Multi

// PartitionScheduler supervises a single partition; Scheduler.Scheduler(i)
// exposes the per-partition supervisors.
type PartitionScheduler = sched.Scheduler

// SchedulerConfig tunes merge triggering; it applies to every partition.
type SchedulerConfig = sched.Config

// Scheduler strategies (§3).
const (
	// AllResources merges with every available thread.
	AllResources = sched.AllResources
	// Background merges with a single thread.
	Background = sched.Background
)

// Workload generation (paper §2).
type (
	// Mix is a query-kind distribution (Figure 1).
	Mix = workload.Mix
	// QueryKind enumerates lookup/scan/range/insert/modification/delete.
	QueryKind = workload.QueryKind
	// Generator produces column values with a controlled distribution.
	Generator = workload.Generator
	// Driver executes a Mix against a Store.
	Driver = workload.Driver
	// DriverCounts tallies a driver run.
	DriverCounts = workload.Counts
)

// Built-in mixes (Figure 1).
var (
	OLTPMix = workload.OLTPMix
	OLAPMix = workload.OLAPMix
	TPCCMix = workload.TPCCMix
)

// NewUniformGenerator draws uniformly from a domain of the given size.
func NewUniformGenerator(domain uint64, seed int64) Generator {
	return workload.NewUniform(domain, seed)
}

// NewUniqueGenerator produces a never-repeating value stream (100% unique).
func NewUniqueGenerator(seed int64) Generator { return workload.NewUnique(seed) }

// NewGeneratorForUniqueFraction sizes a uniform domain so n draws contain
// about frac*n distinct values (the paper's λ parameter).
func NewGeneratorForUniqueFraction(n int, frac float64, seed int64) Generator {
	return workload.NewUniformForUniqueFraction(n, frac, seed)
}

// NewZipfGenerator draws from a skewed (Zipf) distribution.
func NewZipfGenerator(domain uint64, skew float64, seed int64) Generator {
	return workload.NewZipf(domain, skew, seed)
}

// Multi-column queries (conjunctive predicates, positional refinement).
type (
	// Filter is one predicate of a conjunctive query.
	Filter = query.Filter
	// FilterOp is the predicate operator.
	FilterOp = query.Op
	// QueryResult holds matching rows and projected values.
	QueryResult = query.Result
)

// Filter operators.
const (
	// FilterEq matches rows equal to Filter.Value.
	FilterEq = query.Eq
	// FilterBetween matches rows in [Filter.Value, Filter.Hi].
	FilterBetween = query.Between
)

// CSVOptions configures CSV import.
type CSVOptions = csvload.Options

// LoadCSV imports CSV data (header row required) into a new flat table;
// column types are inferred unless fixed via CSVOptions.Types.  Rows land
// in the delta partitions; merge when convenient.
func LoadCSV(r io.Reader, opts CSVOptions) (*Table, int, error) {
	return csvload.Load(r, opts)
}

// LoadCSVFile imports a CSV file.
func LoadCSVFile(path string, opts CSVOptions) (*Table, int, error) {
	return csvload.LoadFile(path, opts)
}

// Analytical model (paper §6.1, §7.4).
type (
	// ModelArch holds architecture constants for the cost model.
	ModelArch = model.Arch
	// ModelWorkload describes one column merge in model terms.
	ModelWorkload = model.Workload
	// ModelPrediction is the model's per-step cost estimate.
	ModelPrediction = model.Prediction
)

// PaperArch returns the paper's evaluation-machine constants.
func PaperArch() ModelArch { return model.PaperArch() }

// Predict evaluates the analytical model for one column merge.
func Predict(w ModelWorkload, a ModelArch, parallel bool) ModelPrediction {
	return model.Predict(w, a, parallel)
}

// CalibrateArch measures this host's streaming and random bandwidth and
// returns a ModelArch for Predict.  hz is the clock used for cycle
// conversion (e.g. 3.3e9); threads <= 0 uses GOMAXPROCS.
func CalibrateArch(hz float64, threads int) ModelArch {
	r := membench.Calibrate(membench.Options{Threads: threads})
	return model.Arch{
		LineBytes:   64,
		LLCBytes:    bench.DetectLLCBytes(),
		StreamBPC:   membench.BytesPerCycle(r.StreamBytesPerSec, hz),
		RandomBPC:   membench.BytesPerCycle(r.RandomBytesPerSec, hz),
		OpsPerCycle: 1,
		Threads:     r.Threads,
		HZ:          hz,
	}
}

// Experiments exposes the paper-reproduction harness.
type (
	// Experiment regenerates one paper figure or table.
	Experiment = bench.Experiment
	// ExperimentScale sets experiment sizes relative to the paper.
	ExperimentScale = bench.Scale
)

// Experiments lists all registered paper reproductions.
func Experiments() []Experiment { return bench.Registry() }

// ExperimentByID resolves one experiment (e.g. "fig7").
func ExperimentByID(id string) (Experiment, bool) { return bench.ByID(id) }
