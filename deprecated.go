package hyrise

// Deprecated sharded-specific entry points, kept for one release while
// callers migrate to the unified Store surface.  Every function here is a
// thin wrapper over its generic replacement; the replacements accept a
// *ShardedTable directly because it satisfies Store.

// ShardedHandle is a typed single-column view across all shards.
//
// Deprecated: use Handle, returned by ColumnOf for either topology.
type ShardedHandle[V Value] = Handle[V]

// ShardedNumericHandle adds cross-shard Sum/Min/Max aggregation.
//
// Deprecated: use NumericHandle, returned by NumericColumnOf for either
// topology.
type ShardedNumericHandle[V interface{ ~uint32 | ~uint64 }] = NumericHandle[V]

// MultiScheduler supervises every shard of a sharded table independently.
//
// Deprecated: use Scheduler, returned by NewScheduler for either topology.
type MultiScheduler = Scheduler

// ShardedColumnOf returns a typed cross-shard handle for the named column.
//
// Deprecated: use ColumnOf.
func ShardedColumnOf[V Value](st *ShardedTable, name string) (*Handle[V], error) {
	return ColumnOf[V](st, name)
}

// ShardedNumericColumnOf returns a cross-shard handle with aggregation
// support.
//
// Deprecated: use NumericColumnOf.
func ShardedNumericColumnOf[V interface{ ~uint32 | ~uint64 }](st *ShardedTable, name string) (*NumericHandle[V], error) {
	return NumericColumnOf[V](st, name)
}

// ShardedQuery evaluates the conjunction of filters against every shard in
// parallel and merges the results under global row ids.
//
// Deprecated: use Query.
func ShardedQuery(st *ShardedTable, filters []Filter, project []string) (*QueryResult, error) {
	return Query(st, filters, project)
}

// NewShardedScheduler supervises every shard of st independently.
//
// Deprecated: use NewScheduler.
func NewShardedScheduler(st *ShardedTable, cfg SchedulerConfig) *Scheduler {
	return NewScheduler(st, cfg)
}

// NewShardedDriver builds a workload driver targeting a sharded table's
// uint64 key-distribution column.
//
// Deprecated: use NewDriver.
func NewShardedDriver(st *ShardedTable, column string, mix Mix, gen Generator, seed int64) (*Driver, error) {
	return NewDriver(st, column, mix, gen, seed)
}
