// BenchmarkRetention is the perf-trajectory artifact behind
// BENCH_retention.json: an update-heavy workload merged with one OLD pin
// held across every cycle, measuring what precise per-pin retention
// keeps versus what the classic min-pin watermark rule would have kept.
// Each iteration updates every row and merges; the pin predates all of
// it, so the coarse rule would retain every dead version ever created
// while the precise rule retains only the versions visible at the pin's
// own epoch.  Reported metrics:
//
//	rows/op            physical row versions stored after the final merge
//	bytes/op           StoreStats.SizeBytes after the final merge
//	retained/op        dead versions kept for the pin by the final merge
//	legacy_retained/op dead versions the watermark rule would have kept
//	reclaim_pct        share of the watermark rule's retention that
//	                   precise retention reclaimed (acceptance: >= 90)
package hyrise_test

import (
	"context"
	"fmt"
	"testing"

	"hyrise"
)

func BenchmarkRetention(b *testing.B) {
	const rows = 20_000
	for _, pinned := range []bool{true, false} {
		b.Run(fmt.Sprintf("old_pin=%v", pinned), func(b *testing.B) {
			s := snapshotBenchStore(b, 1, rows)
			hk, err := hyrise.ColumnOf[uint64](s, "k")
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]int, 0, rows)
			hk.Scan(func(row int, _ uint64) bool {
				ids = append(ids, row)
				return true
			})
			var pin hyrise.ReadView
			if pinned {
				pin = s.Snapshot()
				defer pin.Release()
			}

			// legacyRetained simulates the coarse rule cumulatively: a dead
			// version the min-pin watermark cannot reclaim in its cycle
			// would have stayed forever, so versions accumulate across
			// cycles instead of being re-judged per merge.
			var retained, prevRetained, legacyRetained int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range ids {
					nid, err := s.Update(ids[j], map[string]any{"v": uint64(i*rows + j)})
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = nid
				}
				rep, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				newDead := rep.DeadAtFreeze - prevRetained
				legacyRetained += newDead - rep.LegacyReclaimable
				retained = rep.DeadAtFreeze - rep.RowsReclaimed
				prevRetained = retained
			}
			b.StopTimer()

			stats := s.StoreStats()
			b.ReportMetric(float64(stats.Rows), "rows/op")
			b.ReportMetric(float64(stats.SizeBytes), "bytes/op")
			b.ReportMetric(float64(retained), "retained/op")
			b.ReportMetric(float64(legacyRetained), "legacy_retained/op")
			if legacyRetained > 0 {
				b.ReportMetric(100*float64(legacyRetained-retained)/float64(legacyRetained), "reclaim_pct")
			}
		})
	}
}
