package hyrise

import (
	"context"
	"errors"
	"fmt"
	"io"

	"hyrise/internal/persist"
	"hyrise/internal/query"
	"hyrise/internal/sched"
	"hyrise/internal/shard"
	"hyrise/internal/table"
	"hyrise/internal/workload"
)

// Store is the single surface both table topologies implement: a flat
// *Table (one main/delta pair per column) and a hash-partitioned
// *ShardedTable (N independent such tables) expose identical data
// operations, statistics and merge control.  Every generic entry point of
// this package — ColumnOf, NumericColumnOf, Query, NewScheduler,
// NewDriver, Save, Load — takes a Store, so application code is written
// once and runs against either topology.
//
// Row ids are Store-scoped: a flat table hands out dense insertion-ordered
// ids, a sharded table hands out stable global ids that encode the owning
// shard (not dense, not globally ordered).  Ids obtained from one Store's
// reads are valid for that Store's Update/Delete/Row/IsValid.
type Store interface {
	// Name returns the table name.
	Name() string
	// Schema returns the ordered column definitions.
	Schema() Schema
	// Insert appends one row and returns its row id.
	Insert(values []any) (int, error)
	// InsertRows appends a batch of rows and returns their ids in input
	// order; the whole batch is validated before any row lands.
	InsertRows(rows [][]any) ([]int, error)
	// Update appends a new version of the row and invalidates the old one
	// (insert-only update), returning the new row id.
	Update(row int, changes map[string]any) (int, error)
	// Delete invalidates the row; the version history stays stored.
	Delete(row int) error
	// Row materializes all column values of a row (valid or not).
	Row(row int) ([]any, error)
	// IsValid reports whether the row is the current version.
	IsValid(row int) bool
	// Rows returns the total number of stored row versions.
	Rows() int
	// ValidRows returns the number of current rows.
	ValidRows() int
	// MainRows returns the main-partition tuple count (summed over shards).
	MainRows() int
	// DeltaRows returns the delta tuple count (summed over shards).
	DeltaRows() int
	// Merging reports whether any merge is currently running.
	Merging() bool
	// RequestMerge runs the online merge process: a flat table merges
	// itself, a sharded table fans out across all shards in parallel
	// (MergeAll) and condenses the result into one report.
	RequestMerge(ctx context.Context, opts MergeOptions) (MergeReport, error)
	// Snapshot captures a consistent read view of the whole store with one
	// atomic epoch capture — no coordination with writers.  For a sharded
	// table the epoch is shared by all shards, so the view is consistent
	// across them.  Reads through the view (the *At methods, QueryAt) see
	// exactly the rows current at the captured epoch, no matter how many
	// updates, deletes, key moves or merges commit afterwards.  The view
	// pins its epoch against garbage collection; call ReadView.Release
	// when done with it so merges can reclaim dead versions again.
	Snapshot() ReadView
	// SetGC enables or disables garbage collection during merges (on by
	// default): with GC on, merges drop versions invalidated at or below
	// the GC watermark — the minimum epoch of any unreleased Snapshot view
	// — instead of copying them forever, and the reclaimed row ids are
	// retired (never reused; operations on them return ErrRowInvalid).
	SetGC(enabled bool)
	// GCEnabled reports whether merges garbage-collect.
	GCEnabled() bool
	// ValidRowsAt returns the number of rows visible at the view's epoch
	// (consistent across shards, unlike summing per-partition counts).
	ValidRowsAt(v ReadView) int
	// VisibleAt reports whether the row exists and is visible at the
	// view's epoch — IsValid generalized to snapshots.
	VisibleAt(v ReadView, row int) bool
	// CreateIndex builds a merge-maintained group-key index over the named
	// column (every shard, for a sharded table) and keeps it rebuilt by
	// subsequent merges.  Idempotent; indexes are in-memory only and must
	// be re-created after Load.  See the package doc's "Secondary indexes"
	// section.
	CreateIndex(column string) error
	// IndexStats reports one entry per indexed column (aggregated across
	// shards for a sharded table).
	IndexStats() []IndexStats
	// StoreStats returns the topology-independent statistics snapshot.
	StoreStats() StoreStats
	// Partitions returns the physical table partitions in order: the table
	// itself for a flat table, one entry per shard otherwise.
	Partitions() []*Table
}

// ReadView is a frozen read epoch captured by Store.Snapshot.  Views are
// plain values: cheap to copy, valid for the life of the store.  A view
// from Snapshot pins its epoch against garbage collection until Release is
// called (copies share the pin; releasing any copy releases all).  The
// zero ReadView reads latest (current versions only) and needs no Release.
type ReadView = table.View

// Both topologies satisfy Store.
var (
	_ Store = (*Table)(nil)
	_ Store = (*ShardedTable)(nil)
)

// StoreStats is the unified statistics snapshot: aggregate counts plus
// per-partition detail (see table.StoreStats).
type StoreStats = table.StoreStats

// IndexStats describes one column's group-key index (see table.IndexStats);
// for a sharded table, postings/bytes/builds are summed across shards and
// LastBuild is the slowest shard's most recent rebuild.
type IndexStats = table.IndexStats

// ErrUnknownStore is returned by the generic entry points for a Store
// implementation other than *Table or *ShardedTable.
var ErrUnknownStore = errors.New("hyrise: unknown Store implementation (want *Table or *ShardedTable)")

// ErrDriverColumnType is returned by NewDriver when the driver column is
// not uint64.
var ErrDriverColumnType = workload.ErrDriverColumnType

// columnReader is the method set shared by the flat and sharded typed
// column views; the unified Handle dispatches through it.
type columnReader[V Value] interface {
	Get(row int) (V, error)
	Lookup(v V) []int
	LookupAt(view ReadView, v V) []int
	Range(lo, hi V) []int
	RangeAt(view ReadView, lo, hi V) []int
	Scan(fn func(row int, v V) bool)
	ScanAt(view ReadView, fn func(row int, v V) bool)
	Distinct() int
}

// Handle is a typed single-column view over a Store, supporting key
// lookups, range selects and scans over valid rows.  Backed by a flat
// table it reads one main/delta pair; backed by a sharded table, lookups
// and ranges fan out across all shards in parallel and return global row
// ids.
type Handle[V Value] struct {
	r columnReader[V]
}

// Get returns the value at a row id (valid or not).
func (h *Handle[V]) Get(row int) (V, error) { return h.r.Get(row) }

// Lookup returns the row ids of current rows whose value equals v.
func (h *Handle[V]) Lookup(v V) []int { return h.r.Lookup(v) }

// LookupAt is Lookup against the rows visible at the view's epoch.
func (h *Handle[V]) LookupAt(view ReadView, v V) []int { return h.r.LookupAt(view, v) }

// Range returns the row ids of current rows with value in [lo, hi].
func (h *Handle[V]) Range(lo, hi V) []int { return h.r.Range(lo, hi) }

// RangeAt is Range against the rows visible at the view's epoch.
func (h *Handle[V]) RangeAt(view ReadView, lo, hi V) []int { return h.r.RangeAt(view, lo, hi) }

// Scan streams every current row's value through fn; iteration stops early
// if fn returns false.  On a sharded table rows stream shard by shard, in
// per-shard insertion order.
func (h *Handle[V]) Scan(fn func(row int, v V) bool) { h.r.Scan(fn) }

// ScanAt is Scan against the rows visible at the view's epoch.
func (h *Handle[V]) ScanAt(view ReadView, fn func(row int, v V) bool) { h.r.ScanAt(view, fn) }

// CountEqual returns the number of current rows with value v.
func (h *Handle[V]) CountEqual(v V) int { return len(h.r.Lookup(v)) }

// CountEqualAt is CountEqual at the view's epoch.
func (h *Handle[V]) CountEqualAt(view ReadView, v V) int { return len(h.r.LookupAt(view, v)) }

// Distinct returns the number of distinct values among all stored row
// versions.
func (h *Handle[V]) Distinct() int { return h.r.Distinct() }

// numericReader is the aggregation method set shared by the flat and
// sharded numeric views.
type numericReader[V interface{ ~uint32 | ~uint64 }] interface {
	Sum() uint64
	SumAt(view ReadView) uint64
	Min() (V, bool)
	MinAt(view ReadView) (V, bool)
	Max() (V, bool)
	MaxAt(view ReadView) (V, bool)
}

// NumericHandle adds Sum/Min/Max aggregation over valid rows to integer
// columns; sharded aggregates combine per-shard partials computed in
// parallel.
type NumericHandle[V interface{ ~uint32 | ~uint64 }] struct {
	*Handle[V]
	n numericReader[V]
}

// Sum aggregates the column over current rows.
func (h *NumericHandle[V]) Sum() uint64 { return h.n.Sum() }

// SumAt aggregates over the rows visible at the view's epoch — on a
// sharded table a consistent cross-shard aggregate.
func (h *NumericHandle[V]) SumAt(view ReadView) uint64 { return h.n.SumAt(view) }

// Min returns the smallest value over current rows; ok is false when the
// store has no current row.
func (h *NumericHandle[V]) Min() (V, bool) { return h.n.Min() }

// MinAt is Min at the view's epoch.
func (h *NumericHandle[V]) MinAt(view ReadView) (V, bool) { return h.n.MinAt(view) }

// Max returns the largest value over current rows.
func (h *NumericHandle[V]) Max() (V, bool) { return h.n.Max() }

// MaxAt is Max at the view's epoch.
func (h *NumericHandle[V]) MaxAt(view ReadView) (V, bool) { return h.n.MaxAt(view) }

// ColumnOf returns a typed handle for the named column of either
// topology.  The type parameter must match the column's declared type
// (uint32, uint64 or string).
func ColumnOf[V Value](s Store, name string) (*Handle[V], error) {
	switch x := s.(type) {
	case *Table:
		h, err := table.ColumnOf[V](x, name)
		if err != nil {
			return nil, err
		}
		return &Handle[V]{r: h}, nil
	case *ShardedTable:
		h, err := shard.ColumnOf[V](x, name)
		if err != nil {
			return nil, err
		}
		return &Handle[V]{r: h}, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownStore, s)
	}
}

// NumericColumnOf returns a handle with aggregation support for either
// topology.
func NumericColumnOf[V interface{ ~uint32 | ~uint64 }](s Store, name string) (*NumericHandle[V], error) {
	switch x := s.(type) {
	case *Table:
		h, err := table.NumericColumnOf[V](x, name)
		if err != nil {
			return nil, err
		}
		return &NumericHandle[V]{Handle: &Handle[V]{r: h.Handle}, n: h}, nil
	case *ShardedTable:
		h, err := shard.NumericColumnOf[V](x, name)
		if err != nil {
			return nil, err
		}
		return &NumericHandle[V]{Handle: &Handle[V]{r: h.Handle}, n: h}, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownStore, s)
	}
}

// Query evaluates the conjunction of filters column-at-a-time over current
// rows and projects the named columns (nil projects nothing).  On a
// sharded table every shard evaluates in parallel and the results merge
// under global row ids; each shard reads its own per-shard snapshot.  Use
// QueryAt with a view from Snapshot for a cross-shard-consistent result.
func Query(s Store, filters []Filter, project []string) (*QueryResult, error) {
	return QueryAt(s, table.Latest(), filters, project)
}

// QueryAt is Query against the rows visible at the view's epoch: the
// result reflects one frozen state of the whole store — across all shards
// — even while writers and merges proceed.
func QueryAt(s Store, view ReadView, filters []Filter, project []string) (*QueryResult, error) {
	switch x := s.(type) {
	case *Table:
		return query.RunAt(x, view, filters, project)
	case *ShardedTable:
		return shard.QueryAt(x, view, filters, project)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownStore, s)
	}
}

// NewScheduler supervises every partition of s independently: each
// partition merges when its own delta fraction exceeds cfg.Fraction (N_D >
// Fraction * N_M, §4).  For a flat table that is one supervision loop; for
// a sharded table, one per shard, so a write-hot shard merges often while
// cold shards stay untouched.  Unless cfg.Threads is set, the machine's
// threads are divided evenly across partitions.
func NewScheduler(s Store, cfg SchedulerConfig) *Scheduler {
	parts := s.Partitions()
	targets := make([]sched.MergeTable, len(parts))
	for i, p := range parts {
		targets[i] = p
	}
	return sched.NewMulti(targets, cfg)
}

// NewDriver builds a workload driver executing a query mix against the
// named uint64 column of either topology.  A column of any other type
// returns ErrDriverColumnType.
func NewDriver(s Store, column string, mix Mix, gen Generator, seed int64) (*Driver, error) {
	if err := workload.CheckDriverColumn(s, column); err != nil {
		return nil, err
	}
	h, err := ColumnOf[uint64](s, column)
	if err != nil {
		return nil, err
	}
	return workload.NewDriverFor(s, column, h, mix, gen, seed)
}

// Save writes a binary snapshot of either topology.  The snapshot header
// is versioned and records the topology, key column and shard count, so a
// sharded table round-trips through Load with its shard layout, global row
// ids and per-shard main/delta split intact.
func Save(s Store, w io.Writer) error {
	switch x := s.(type) {
	case *Table:
		return persist.Save(x, w)
	case *ShardedTable:
		return persist.SaveSharded(x, w)
	default:
		return fmt.Errorf("%w: %T", ErrUnknownStore, s)
	}
}

// Load reads a snapshot written by Save (or by the legacy v1 format) and
// rebuilds the Store it describes, auto-detecting the topology from the
// snapshot header: a *Table for flat snapshots, a *ShardedTable for
// sharded ones.
func Load(r io.Reader) (Store, error) {
	ft, st, err := persist.LoadAny(r)
	if err != nil {
		return nil, err
	}
	if st != nil {
		return st, nil
	}
	return ft, nil
}

// SaveFile writes a snapshot of either topology to path.
func SaveFile(s Store, path string) error {
	switch x := s.(type) {
	case *Table:
		return persist.SaveFile(x, path)
	case *ShardedTable:
		return persist.SaveShardedFile(x, path)
	default:
		return fmt.Errorf("%w: %T", ErrUnknownStore, s)
	}
}

// LoadFile reads a snapshot file of either topology.
func LoadFile(path string) (Store, error) {
	ft, st, err := persist.LoadAnyFile(path)
	if err != nil {
		return nil, err
	}
	if st != nil {
		return st, nil
	}
	return ft, nil
}
