// BenchmarkGC is the perf-trajectory artifact behind BENCH_gc.json: an
// update-heavy workload driven through repeated merge cycles with garbage
// collection on versus off, across 1/4/8 shards.  Each iteration runs one
// full cycle (update every row once, then merge); the reported metrics
// expose what GC buys — physical rows and bytes stay flat instead of
// growing with every cycle — and what it costs on the merge path.
//
// Each cycle ends with a full-column aggregate scan, so ns/op also tracks
// how scan cost evolves with (or without) reclamation.  Reported metrics:
//
//	rows/op     physical row versions stored after the final merge
//	bytes/op    StoreStats.SizeBytes after the final merge
//	retired/op  cumulative ids retired by GC (0 with gc=false)
package hyrise_test

import (
	"context"
	"fmt"
	"testing"

	"hyrise"
)

func BenchmarkGC(b *testing.B) {
	const rows = 20_000
	for _, shards := range []int{1, 4, 8} {
		for _, gc := range []bool{true, false} {
			b.Run(fmt.Sprintf("shards=%d/gc=%v", shards, gc), func(b *testing.B) {
				s := snapshotBenchStore(b, shards, rows)
				s.SetGC(gc)
				h, err := hyrise.NumericColumnOf[uint64](s, "v")
				if err != nil {
					b.Fatal(err)
				}
				ids := make([]int, 0, rows)
				hk, err := hyrise.ColumnOf[uint64](s, "k")
				if err != nil {
					b.Fatal(err)
				}
				hk.Scan(func(row int, _ uint64) bool {
					ids = append(ids, row)
					return true
				})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range ids {
						nid, err := s.Update(ids[j], map[string]any{"v": uint64(i*rows + j)})
						if err != nil {
							b.Fatal(err)
						}
						ids[j] = nid
					}
					if _, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
						b.Fatal(err)
					}
					if h.Sum() == 0 {
						b.Fatal("empty sum")
					}
				}
				b.StopTimer()
				stats := s.StoreStats()
				b.ReportMetric(float64(stats.Rows), "rows/op")
				b.ReportMetric(float64(stats.SizeBytes), "bytes/op")
				b.ReportMetric(float64(stats.RetiredRows), "retired/op")
			})
		}
	}
}
