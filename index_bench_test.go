// BenchmarkIndexLookup is the perf-trajectory artifact behind
// BENCH_index.json: point lookups through a merge-maintained group-key
// index against the vectorized scan kernels, on a ~1M-row merged main,
// across selectivities 1e-5..1e-1 and 1/4/8 shards.  The "crossover"
// sub-benchmarks time both paths back to back and report the speedup
// per selectivity plus the crossover selectivity — the match fraction
// at which the scan kernels catch up with posting-list reads (1.0 when
// the index wins across the whole tested range).
//
// The acceptance bar (TestIndexedLookupSpeedup) is a >= 10x indexed
// speedup at 0.1% selectivity on the 1M-row merged main; the observed
// ratio is ~30x and up, so the assertion holds on noisy shared runners.
package hyrise_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hyrise"
)

// indexBenchSels is the selectivity ladder: expected match fraction of
// one point lookup on the ~1M-row store.
var indexBenchSels = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// buildIndexBench loads a store with n rows whose "k" column contains
// one designated probe value per selectivity (appearing round(sel*n)
// times) amid a wide filler spread, mirrors "k" into the unindexed
// shadow column "s", merges everything into main, and indexes "k".
// Returns the store and the probe value for each selectivity.
func buildIndexBench(tb testing.TB, shards, n int) (hyrise.Store, map[float64]uint64) {
	tb.Helper()
	schema := hyrise.Schema{
		{Name: "id", Type: hyrise.Uint64},
		{Name: "k", Type: hyrise.Uint64},
		{Name: "s", Type: hyrise.Uint64},
	}
	var st hyrise.Store
	var err error
	if shards > 1 {
		st, err = hyrise.NewShardedTable("idxbench", schema, "id", shards)
	} else {
		st, err = hyrise.NewTable("idxbench", schema)
	}
	if err != nil {
		tb.Fatal(err)
	}

	vals := make([]uint64, n)
	probes := make(map[float64]uint64, len(indexBenchSels))
	at := 0
	for pi, sel := range indexBenchSels {
		v := uint64(pi + 1)
		probes[sel] = v
		for j := 0; j < int(sel*float64(n)) && at < n; j++ {
			vals[at] = v
			at++
		}
	}
	for ; at < n; at++ {
		vals[at] = 1000 + uint64(at%50000) // filler, disjoint from probes
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })

	const chunk = 1 << 16
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		rows := make([][]any, hi-lo)
		for i := range rows {
			v := vals[lo+i]
			rows[i] = []any{uint64(lo + i), v, v}
		}
		if _, err := st.InsertRows(rows); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := st.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
		tb.Fatal(err)
	}
	if err := st.CreateIndex("k"); err != nil {
		tb.Fatal(err)
	}
	return st, probes
}

// timeLookups returns the per-op wall time of reps lookups of v.
func timeLookups(h *hyrise.Handle[uint64], v uint64, reps int) time.Duration {
	h.Lookup(v) // warm
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		benchSink = len(h.Lookup(v))
	}
	return time.Since(t0) / time.Duration(reps)
}

func BenchmarkIndexLookup(b *testing.B) {
	const n = 1 << 20
	for _, shards := range []int{1, 4, 8} {
		st, probes := buildIndexBench(b, shards, n)
		hk, err := hyrise.ColumnOf[uint64](st, "k")
		if err != nil {
			b.Fatal(err)
		}
		hs, err := hyrise.ColumnOf[uint64](st, "s")
		if err != nil {
			b.Fatal(err)
		}
		for _, sel := range indexBenchSels {
			v := probes[sel]
			b.Run(fmt.Sprintf("shards=%d/sel=%.0e/impl=indexed", shards, sel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink = len(hk.Lookup(v))
				}
				b.ReportMetric(float64(benchSink), "rows")
			})
			b.Run(fmt.Sprintf("shards=%d/sel=%.0e/impl=scan", shards, sel), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink = len(hs.Lookup(v))
				}
				b.ReportMetric(float64(benchSink), "rows")
			})
		}
		// One timed ladder over both paths: speedup per selectivity and
		// the crossover point, in a single JSON record per shard count.
		b.Run(fmt.Sprintf("shards=%d/crossover", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				crossover := 1.0
				for _, sel := range indexBenchSels {
					v := probes[sel]
					idx := timeLookups(hk, v, 50)
					scan := timeLookups(hs, v, 10)
					speedup := float64(scan) / float64(idx)
					b.ReportMetric(speedup, fmt.Sprintf("speedup-%.0e", sel))
					if speedup < 1 && crossover == 1.0 {
						crossover = sel
					}
				}
				b.ReportMetric(crossover, "crossover-sel")
			}
		})
	}
}

// TestIndexedLookupSpeedup is the acceptance bar for the group-key
// index: at 0.1% selectivity on a 1M-row merged main, an indexed point
// lookup must beat the scan kernels by at least 10x.
func TestIndexedLookupSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row store build")
	}
	const n = 1 << 20
	st, probes := buildIndexBench(t, 1, n)
	hk, err := hyrise.ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	hs, err := hyrise.ColumnOf[uint64](st, "s")
	if err != nil {
		t.Fatal(err)
	}
	v := probes[1e-3]
	if got, want := hk.Lookup(v), hs.Lookup(v); !equalIDs(got, want) {
		t.Fatalf("indexed lookup diverges from scan: %d vs %d rows", len(got), len(want))
	}
	// Best of 3 measurement rounds on each side blunts scheduler noise;
	// the expected ratio is ~30x and up against a 10x bar.
	best := func(h *hyrise.Handle[uint64], reps int) time.Duration {
		d := timeLookups(h, v, reps)
		for i := 0; i < 2; i++ {
			if r := timeLookups(h, v, reps); r < d {
				d = r
			}
		}
		return d
	}
	idx := best(hk, 100)
	scan := best(hs, 10)
	t.Logf("sel=1e-3: indexed %v/op, scan %v/op (%.0fx)", idx, scan, float64(scan)/float64(idx))
	if float64(scan) < 10*float64(idx) {
		t.Errorf("indexed lookup %v/op not >= 10x faster than scan %v/op", idx, scan)
	}
}
