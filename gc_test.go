package hyrise_test

import (
	"context"
	"errors"
	"testing"

	"hyrise"
)

// TestStoreGCAcceptance is the PR acceptance loop run through the unified
// Store surface on both topologies: under a sustained 100% update workload
// with no pinned views, StoreStats.Rows - ValidRows and SizeBytes stay
// bounded across >= 10 merge cycles, while a pinned view captured mid-run
// still reads its exact original row set afterwards — and reclaimed ids
// keep failing with ErrRowInvalid.
func TestStoreGCAcceptance(t *testing.T) {
	schema := hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}
	// The parallel-merge variants route every merge cycle through the
	// intra-column range-partitioned GC kernels across 1/4/8 shards.
	parallel := hyrise.MergeOptions{Threads: 4, Strategy: hyrise.IntraColumn}
	cases := []struct {
		name  string
		mk    func() (hyrise.Store, error)
		merge hyrise.MergeOptions
	}{
		{"flat", func() (hyrise.Store, error) { return hyrise.NewTable("gc", schema) }, hyrise.MergeOptions{}},
		{"sharded", func() (hyrise.Store, error) {
			return hyrise.NewShardedTable("gc", schema, "k", 4)
		}, hyrise.MergeOptions{}},
		{"flat-parallel-merge", func() (hyrise.Store, error) { return hyrise.NewTable("gc", schema) }, parallel},
		{"sharded-1-parallel-merge", func() (hyrise.Store, error) {
			return hyrise.NewShardedTable("gc", schema, "k", 1)
		}, parallel},
		{"sharded-8-parallel-merge", func() (hyrise.Store, error) {
			return hyrise.NewShardedTable("gc", schema, "k", 8)
		}, parallel},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := c.mk()
			if err != nil {
				t.Fatal(err)
			}
			if !s.GCEnabled() {
				t.Fatal("GC should be on by default")
			}
			const n = 150
			ids := make([]int, n)
			var pinnedSum uint64
			for i := range ids {
				if ids[i], err = s.Insert([]any{uint64(i), uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			firstVersion := ids[0]

			var view hyrise.ReadView
			pinned := false
			var sizeCap int
			h, err := hyrise.NumericColumnOf[uint64](s, "v")
			if err != nil {
				t.Fatal(err)
			}
			for cycle := 0; cycle < 12; cycle++ {
				for i := range ids {
					nid, err := s.Update(ids[i], map[string]any{"v": uint64(cycle*n + i)})
					if err != nil {
						t.Fatalf("cycle %d: %v", cycle, err)
					}
					ids[i] = nid
				}
				rep, err := s.RequestMerge(context.Background(), c.merge)
				if err != nil {
					t.Fatal(err)
				}
				stats := s.StoreStats()
				if !pinned {
					// Bounded: the merge reclaimed every superseded version.
					if rep.RowsReclaimed != n {
						t.Fatalf("cycle %d: reclaimed %d want %d", cycle, rep.RowsReclaimed, n)
					}
					if stats.Rows-stats.ValidRows != 0 || stats.Rows != n {
						t.Fatalf("cycle %d: rows=%d valid=%d, growth not bounded",
							cycle, stats.Rows, stats.ValidRows)
					}
					if sizeCap == 0 {
						sizeCap = 4 * stats.SizeBytes
					}
					if stats.SizeBytes > sizeCap {
						t.Fatalf("cycle %d: size %d exceeds cap %d", cycle, stats.SizeBytes, sizeCap)
					}
				} else if got := s.ValidRowsAt(view); got != n {
					t.Fatalf("cycle %d: pinned view sees %d rows want %d", cycle, got, n)
				}
				if cycle == 6 {
					view = s.Snapshot()
					pinned = true
					pinnedSum = h.SumAt(view)
				}
			}

			// The mid-run pin froze its row set exactly.
			if got := h.SumAt(view); got != pinnedSum {
				t.Fatalf("pinned sum drifted: %d want %d", got, pinnedSum)
			}
			// Reclaimed ids are retired for good.
			if _, err := s.Row(firstVersion); !errors.Is(err, hyrise.ErrRowInvalid) {
				t.Fatalf("Row(retired): %v want ErrRowInvalid", err)
			}
			// Releasing the pin re-bounds the store on the next merge.
			view.Release()
			if _, err := s.RequestMerge(context.Background(), c.merge); err != nil {
				t.Fatal(err)
			}
			stats := s.StoreStats()
			if stats.Rows != stats.ValidRows || stats.ValidRows != n {
				t.Fatalf("after release: rows=%d valid=%d want %d", stats.Rows, stats.ValidRows, n)
			}
			if stats.RetiredRows == 0 || stats.ReclaimedBytes == 0 {
				t.Fatalf("GC counters missing from StoreStats: %+v", stats)
			}
		})
	}
}
