package hyrise_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"hyrise"
	"hyrise/client"
)

// benchReplPrimary serves a preloaded, replicating 4-shard primary.
func benchReplPrimary(b *testing.B, preload int) string {
	b.Helper()
	st, err := hyrise.NewShardedTable("bench", hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}, "k", 4)
	if err != nil {
		b.Fatal(err)
	}
	olog, err := hyrise.EnableReplication(st, 0)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]any, preload)
	for i := range rows {
		rows[i] = []any{uint64(i), uint64(i)}
	}
	if _, err := st.InsertRows(rows); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := hyrise.Serve(l, st, hyrise.ServerOptions{OpLog: olog})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// benchReplFollowers bootstraps n served followers of the primary.
func benchReplFollowers(b *testing.B, paddr string, n int) ([]string, []*hyrise.Replica) {
	b.Helper()
	addrs := make([]string, n)
	reps := make([]*hyrise.Replica, n)
	for i := 0; i < n; i++ {
		rep, err := hyrise.Follow(paddr, hyrise.ReplicaOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rep.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv, err := hyrise.Serve(l, hyrise.FollowStore(rep), hyrise.ServerOptions{Replica: rep})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		addrs[i] = l.Addr().String()
		reps[i] = rep
	}
	return addrs, reps
}

func waitReplApplied(b *testing.B, rep *hyrise.Replica, e uint64) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedEpoch() < e {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at epoch %d, want %d (err=%v)", rep.AppliedEpoch(), e, rep.Err())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// BenchmarkReplRead measures pinned-snapshot point-read throughput as the
// read side scales out: the same 4-client workload against a lone
// primary, then with one and two followers absorbing the routed reads.
// CI publishes the trajectory as BENCH_repl.json.
func BenchmarkReplRead(b *testing.B) {
	const (
		preload = 100_000
		clients = 4
	)
	for _, nf := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("followers=%d", nf), func(b *testing.B) {
			paddr := benchReplPrimary(b, preload)
			faddrs, reps := benchReplFollowers(b, paddr, nf)
			cs := make([]*client.Client, clients)
			snaps := make([]client.Snap, clients)
			idx := map[*client.Client]int{}
			for i := range cs {
				c, err := client.DialOptions(paddr, client.Options{
					Followers:    faddrs,
					MaxStaleness: 1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { c.Close() })
				if snaps[i], err = c.Snapshot(); err != nil {
					b.Fatal(err)
				}
				if e, ok := c.SnapshotEpoch(snaps[i]); ok {
					for _, rep := range reps {
						waitReplApplied(b, rep, e)
					}
				}
				cs[i] = c
				idx[c] = i
			}
			b.ResetTimer()
			runConcurrent(b, cs, func(c *client.Client, i int) error {
				rows, err := c.LookupAt(snaps[idx[c]], "k", uint64(i%preload))
				if err == nil && len(rows) != 1 {
					err = fmt.Errorf("lookup found %d rows", len(rows))
				}
				return err
			})
		})
	}
}

// BenchmarkReplApplyLag measures write-to-follower propagation: each op
// commits a write on the primary, captures its epoch, and waits until the
// follower's applied epoch covers it — ns/op is the full replication
// round trip (append, stream, apply, heartbeat).
func BenchmarkReplApplyLag(b *testing.B) {
	paddr := benchReplPrimary(b, 1000)
	_, reps := benchReplFollowers(b, paddr, 1)
	rep := reps[0]
	c, err := client.Dial(paddr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert([]any{uint64(1_000_000 + i), uint64(i)}); err != nil {
			b.Fatal(err)
		}
		snap, err := c.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		e, _ := c.SnapshotEpoch(snap)
		waitReplApplied(b, rep, e)
		if err := c.Release(snap); err != nil {
			b.Fatal(err)
		}
	}
}
