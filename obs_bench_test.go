package hyrise_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hyrise"
	"hyrise/client"
)

// BenchmarkServerLookupNoop is BenchmarkServerLookup with the metrics
// registry compiled out (ServerOptions.NoMetrics): the CI obs artifact
// compares the two to enforce the <3% instrumentation-overhead budget on
// the read path.
func BenchmarkServerLookupNoop(b *testing.B) {
	const preload = 100_000
	for _, clients := range serverClientCounts {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			addr, _ := benchServerOpts(b, preload, hyrise.ServerOptions{NoMetrics: true})
			cs := benchClients(b, addr, clients)
			b.ResetTimer()
			runConcurrent(b, cs, func(c *client.Client, i int) error {
				rows, err := c.Lookup("k", uint64(i%preload))
				if err == nil && len(rows) != 1 {
					err = fmt.Errorf("lookup found %d rows", len(rows))
				}
				return err
			})
		})
	}
}

// BenchmarkMetricsScrape measures one /metrics render while lookup
// traffic runs underneath — the cost an operator's scrape interval pays
// on a busy server.  Allocations per scrape are part of the artifact.
func BenchmarkMetricsScrape(b *testing.B) {
	const preload = 10_000
	addr, srv := benchServerOpts(b, preload, hyrise.ServerOptions{})
	cs := benchClients(b, addr, 2)
	stop := make(chan struct{})
	var stopped atomic.Bool
	for _, c := range cs {
		go func(c *client.Client) {
			for i := 0; !stopped.Load(); i++ {
				if _, err := c.Lookup("k", uint64(i%preload)); err != nil {
					return
				}
			}
		}(c)
	}
	b.Cleanup(func() { stopped.Store(true); close(stop) })
	h := srv.ObsHandler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("scrape status %d", rec.Code)
		}
	}
}
