package hyrise

import (
	"fmt"

	"hyrise/internal/oplog"
	"hyrise/internal/replica"
)

// OpLog is the epoch-stamped operation log feeding replication (see
// internal/oplog).  Obtain one with EnableReplication and hand it to
// Serve via ServerOptions.OpLog so followers can subscribe.
type OpLog = oplog.Log

// Replica is a read-only follower store fed by a primary's op stream
// (see internal/replica).  Obtain one with Follow; serve it with
// ServerOptions.Replica set so the server reports the follower role and
// rejects writes.
type Replica = replica.Replica

// ReplicaOptions configures Follow.
type ReplicaOptions = replica.Options

// EnableReplication attaches a fresh operation log to the store's write
// path and returns it: from here on every insert, update, delete and
// cross-shard move is recorded, stamped with the epoch it committed
// under, and retained for up to cap entries (0 = a default of one
// million).  Call it before the first write reaches the store; attaching
// to a store that already has a log attached fails.
//
// Serving the log is the server's job: pass it in ServerOptions.OpLog
// (or start hyrised with -replicate) and followers subscribe over the
// ordinary listener.
func EnableReplication(st Store, cap int) (*OpLog, error) {
	l := oplog.New(st.Partitions()[0].Clock(), cap)
	var err error
	switch x := st.(type) {
	case *Table:
		err = x.AttachOplog(l, 0)
	case *ShardedTable:
		err = x.AttachOplog(l)
	default:
		err = fmt.Errorf("hyrise: unsupported store %T", st)
	}
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Follow bootstraps a read-only follower of the replicating primary at
// addr: it streams the primary's snapshot into a fresh local store,
// applies the op tail, and returns once the first heartbeat makes the
// store exact at some primary epoch.  The replica keeps applying ops —
// and reconnecting through failures — until Close.
//
// FollowStore extracts the local Store; reads on it are exact at
// Replica.AppliedEpoch.  Serve it with ServerOptions.Replica set (or
// start hyrised with -follow) to expose it to network clients.
func Follow(addr string, opts ReplicaOptions) (*Replica, error) {
	return replica.Open(addr, opts)
}

// FollowStore returns the follower-local store a Replica applies the
// primary's ops into.  Its topology mirrors the primary's.
func FollowStore(r *Replica) Store {
	if f := r.Flat(); f != nil {
		return f
	}
	return r.Sharded()
}
