package hyrise

import (
	"errors"
	"net"

	"hyrise/client"
	"hyrise/internal/server"
)

// DBServer serves either Store topology over the length-prefixed binary
// protocol (see internal/server for the protocol description and
// cmd/hyrised for the standalone daemon).  Obtain one with Serve; stop it
// with Shutdown (graceful, drains in-flight requests) or Close.
type DBServer = server.Server

// ServerOptions configures Serve.
type ServerOptions = server.Options

// Serve starts serving s on l in a background goroutine and returns the
// running server.  Requests execute directly against s — the server adds
// no locking of its own — so the process may keep using s (schedulers,
// local reads) while remote clients connect.  Stop with
// DBServer.Shutdown, which drains in-flight requests, or DBServer.Close.
// If the accept loop dies on a listener error, the failure is reported
// through ServerOptions.Logger (run DBServer.Serve directly, as
// cmd/hyrised does, to handle it programmatically).  The returned
// server's Registry and ObsHandler expose its metrics; see the package
// documentation's Observability section.
func Serve(l net.Listener, s Store, opts ServerOptions) (*DBServer, error) {
	srv, err := server.New(s, opts)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, server.ErrServerClosed) && opts.Logger != nil {
			opts.Logger.Error("hyrise: server stopped", "addr", l.Addr().String(), "err", err)
		}
	}()
	return srv, nil
}

// Client is the pooled network client from package hyrise/client; Dial
// is re-exported here so the common case needs one import.  The client's
// typed errors (client.ErrRowInvalid, client.ErrBadSnapshot, ...) live
// in that package.
type Client = client.Client

// Dial connects to a hyrise server (hyrise.Serve or cmd/hyrised) with
// default pooling and returns the client.  Use client.DialOptions for
// explicit pool sizing.
func Dial(addr string) (*Client, error) { return client.Dial(addr) }
