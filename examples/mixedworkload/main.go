// Mixedworkload runs the paper's headline scenario: one table serving a
// combined transactional and analytical workload (§2's Demand-Planning /
// Available-To-Promise applications) while the merge scheduler folds
// deltas in the background.  OLTP writers, OLTP readers and OLAP scan
// queries run concurrently; the output shows queries proceeding during
// online merges and the delta fraction staying bounded.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"hyrise"
)

func main() {
	t, err := hyrise.NewTable("orders", hyrise.Schema{
		{Name: "customer", Type: hyrise.Uint64},
		{Name: "amount", Type: hyrise.Uint32},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Seed historical data and compress it.
	for i := 0; i < 200_000; i++ {
		t.Insert([]any{uint64(i % 5000), uint32(i % 1000)})
	}
	if _, err := t.Merge(context.Background(), hyrise.MergeOptions{}); err != nil {
		log.Fatal(err)
	}

	// The scheduler merges whenever the delta exceeds 2% of the main
	// partition (paper §4: the trigger is N_D > fraction * N_M).
	var merges atomic.Int32
	scheduler := hyrise.NewScheduler(t, hyrise.SchedulerConfig{
		Fraction:     0.02,
		MinDeltaRows: 500,
		Interval:     20 * time.Millisecond,
		Strategy:     hyrise.AllResources,
		OnMerge: func(r hyrise.MergeReport) {
			merges.Add(1)
			fmt.Printf("  [scheduler] merged %6d rows in %8s (main now %d rows)\n",
				r.RowsMerged, r.Wall.Round(time.Millisecond), r.MainRowsAfter)
		},
	})
	if err := scheduler.Start(); err != nil {
		log.Fatal(err)
	}
	defer scheduler.Stop()

	const runFor = 3 * time.Second
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	var inserts, lookups, scans atomic.Int64

	// OLTP writers: order entry.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := hyrise.NewUniformGenerator(5000, int64(w))
			for time.Now().Before(deadline) {
				if _, err := t.Insert([]any{gen.Next(), uint32(w)}); err != nil {
					log.Println(err)
					return
				}
				inserts.Add(1)
			}
		}(w)
	}
	// OLTP readers: customer lookups, paced at a few hundred QPS.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, _ := hyrise.ColumnOf[uint64](t, "customer")
		gen := hyrise.NewUniformGenerator(5000, 99)
		for time.Now().Before(deadline) {
			h.Lookup(gen.Next())
			lookups.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// OLAP reader: full-column aggregation, paced like a reporting
	// dashboard (a busy-looped full scan would monopolize the table's
	// read lock and starve order entry).
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, _ := hyrise.NumericColumnOf[uint32](t, "amount")
		for time.Now().Before(deadline) {
			_ = h.Sum()
			scans.Add(1)
			time.Sleep(100 * time.Millisecond)
		}
	}()

	// Progress telemetry.
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		fmt.Printf("delta %5.2f%% of main | %7d inserts | %6d lookups | %4d scans | merging=%v\n",
			100*t.DeltaFraction(), inserts.Load(), lookups.Load(), scans.Load(), t.Merging())
	}
	wg.Wait()

	fmt.Printf("\nran %s: %d inserts (%.0f/s), %d lookups, %d scans, %d scheduled merges\n",
		runFor, inserts.Load(), float64(inserts.Load())/runFor.Seconds(),
		lookups.Load(), scans.Load(), merges.Load())
	fmt.Printf("final state: main=%d rows, delta=%d rows (%.2f%%)\n",
		t.MainRows(), t.DeltaRows(), 100*t.DeltaFraction())
	fmt.Println("\nthe delta fraction stays bounded while reads keep running: the merge is online")
}
