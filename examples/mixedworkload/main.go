// Mixedworkload runs the paper's headline scenario: one table serving a
// combined transactional and analytical workload (§2's Demand-Planning /
// Available-To-Promise applications) while the merge scheduler folds
// deltas in the background.  OLTP writers, OLTP readers and OLAP scan
// queries run concurrently; the output shows queries proceeding during
// online merges and the delta fraction staying bounded.
//
// The whole pipeline is written against hyrise.Store: run it with
// -shards 1 for a flat table or -shards 8 to hash-partition the same
// workload across shards — the code path does not change, only the
// topology and the contention profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"hyrise"
)

func main() {
	shards := flag.Int("shards", 1, "hash-partition the table across N shards (1 = flat)")
	flag.Parse()

	schema := hyrise.Schema{
		{Name: "customer", Type: hyrise.Uint64},
		{Name: "amount", Type: hyrise.Uint32},
	}
	var s hyrise.Store
	var err error
	if *shards > 1 {
		s, err = hyrise.NewShardedTable("orders", schema, "customer", *shards)
	} else {
		s, err = hyrise.NewTable("orders", schema)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running over %d partition(s)\n", len(s.Partitions()))

	// Seed historical data and compress it.
	for i := 0; i < 200_000; i++ {
		s.Insert([]any{uint64(i % 5000), uint32(i % 1000)})
	}
	if _, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
		log.Fatal(err)
	}

	// The scheduler supervises every partition independently, merging
	// whenever its delta exceeds 2% of its main partition (paper §4: the
	// trigger is N_D > fraction * N_M).
	var merges atomic.Int32
	scheduler := hyrise.NewScheduler(s, hyrise.SchedulerConfig{
		Fraction:     0.02,
		MinDeltaRows: 500,
		Interval:     20 * time.Millisecond,
		Strategy:     hyrise.AllResources,
		OnMerge: func(r hyrise.MergeReport) {
			merges.Add(1)
			fmt.Printf("  [scheduler] merged %6d rows in %8s (partition main now %d rows)\n",
				r.RowsMerged, r.Wall.Round(time.Millisecond), r.MainRowsAfter)
		},
	})
	if err := scheduler.Start(); err != nil {
		log.Fatal(err)
	}
	defer scheduler.Stop()

	const runFor = 3 * time.Second
	deadline := time.Now().Add(runFor)
	var wg sync.WaitGroup
	var inserts, lookups, scans atomic.Int64

	// OLTP writers: order entry.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := hyrise.NewUniformGenerator(5000, int64(w))
			for time.Now().Before(deadline) {
				if _, err := s.Insert([]any{gen.Next(), uint32(w)}); err != nil {
					log.Println(err)
					return
				}
				inserts.Add(1)
			}
		}(w)
	}
	// OLTP readers: customer lookups, paced at a few hundred QPS.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, _ := hyrise.ColumnOf[uint64](s, "customer")
		gen := hyrise.NewUniformGenerator(5000, 99)
		for time.Now().Before(deadline) {
			h.Lookup(gen.Next())
			lookups.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// OLAP reader: full-column aggregation, paced like a reporting
	// dashboard (a busy-looped full scan would monopolize the table's
	// read lock and starve order entry).
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, _ := hyrise.NumericColumnOf[uint32](s, "amount")
		for time.Now().Before(deadline) {
			_ = h.Sum()
			scans.Add(1)
			time.Sleep(100 * time.Millisecond)
		}
	}()

	deltaPct := func() float64 {
		main, delta := s.MainRows(), s.DeltaRows()
		if main == 0 {
			return 0
		}
		return 100 * float64(delta) / float64(main)
	}

	// Progress telemetry.
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		fmt.Printf("delta %5.2f%% of main | %7d inserts | %6d lookups | %4d scans | merging=%v\n",
			deltaPct(), inserts.Load(), lookups.Load(), scans.Load(), s.Merging())
	}
	wg.Wait()

	fmt.Printf("\nran %s: %d inserts (%.0f/s), %d lookups, %d scans, %d scheduled merges\n",
		runFor, inserts.Load(), float64(inserts.Load())/runFor.Seconds(),
		lookups.Load(), scans.Load(), merges.Load())
	fmt.Printf("final state: main=%d rows, delta=%d rows (%.2f%%)\n",
		s.MainRows(), s.DeltaRows(), deltaPct())
	fmt.Println("\nthe delta fraction stays bounded while reads keep running: the merge is online")
}
