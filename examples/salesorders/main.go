// Salesorders reproduces the paper's §2 motivating scenario at laptop
// scale: a wide VBAP-style sales-order table receives a month of new
// orders in its delta partitions, and the merge process folds them into
// the read-optimized mains — first with the naive algorithm the paper
// measured at ~1,000 updates/second, then with the optimized one.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hyrise"
)

const (
	columns   = 40      // paper: 230 (reduced to keep the example snappy)
	baseRows  = 200_000 // paper: 33M rows of 3 years of sales orders
	monthRows = 4_500   // paper: 750K rows of one month
)

func main() {
	schema := hyrise.Schema{{Name: "order_id", Type: hyrise.Uint64}}
	for i := 1; i < columns; i++ {
		schema = append(schema, hyrise.ColumnDef{
			Name: fmt.Sprintf("attr%02d", i), Type: hyrise.Uint64,
		})
	}
	t, err := hyrise.NewTable("vbap", schema)
	if err != nil {
		log.Fatal(err)
	}

	// Enterprise columns draw from small domains (paper Figure 4); order
	// ids are unique.  Rows are staged in batches and appended through
	// InsertRows, which validates the batch up front and takes the table
	// lock once.
	ids := hyrise.NewUniqueGenerator(1)
	attrs := hyrise.NewUniformGenerator(512, 2)
	insertRows := func(n int) {
		const batchSize = 10_000
		for r := 0; r < n; r += batchSize {
			m := batchSize
			if r+m > n {
				m = n - r
			}
			batch := make([][]any, m)
			for b := range batch {
				row := make([]any, columns)
				row[0] = ids.Next()
				for c := 1; c < columns; c++ {
					row[c] = attrs.Next()
				}
				batch[b] = row
			}
			if _, err := t.InsertRows(batch); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("loading %d rows x %d columns of historical orders...\n", baseRows, columns)
	start := time.Now()
	insertRows(baseRows)
	if _, err := t.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded and compressed in %s; main storage %d MB\n\n",
		time.Since(start).Round(time.Millisecond), t.Stats().SizeBytes>>20)

	// One month of new orders lands in the delta partitions.
	fmt.Printf("inserting one month of %d new orders...\n", monthRows)
	insertRows(monthRows)
	fmt.Printf("delta now %.2f%% of main\n\n", 100*t.DeltaFraction())

	// Naive merge (the paper's ~1,000 updates/second baseline).
	repNaive, err := t.RequestMerge(context.Background(), hyrise.MergeOptions{Algorithm: hyrise.Naive})
	if err != nil {
		log.Fatal(err)
	}
	naiveRate := float64(repNaive.RowsMerged) / repNaive.Wall.Seconds()
	fmt.Printf("naive merge:     %8s  -> %7.0f merged updates/second\n", repNaive.Wall.Round(time.Millisecond), naiveRate)

	// Refill an identical month and merge optimized.
	insertRows(monthRows)
	repOpt, err := t.RequestMerge(context.Background(), hyrise.MergeOptions{Algorithm: hyrise.Optimized})
	if err != nil {
		log.Fatal(err)
	}
	optRate := float64(repOpt.RowsMerged) / repOpt.Wall.Seconds()
	fmt.Printf("optimized merge: %8s  -> %7.0f merged updates/second (%.1fx faster)\n",
		repOpt.Wall.Round(time.Millisecond), optRate,
		repNaive.Wall.Seconds()/repOpt.Wall.Seconds())

	fmt.Printf("\npaper context: the naive merge sustained ~1,000 updates/second on the real\n" +
		"33M-row VBAP table (12 minutes per month); the optimized algorithm reduced the\n" +
		"merge overhead ~30x versus unoptimized serial code (§2, §7)\n")
}
