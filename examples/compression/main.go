// Compression demonstrates why enterprise data suits dictionary encoding
// (paper §2, Figure 4): columns drawn from the published inventory-
// management and financial-accounting distinct-value profiles are loaded,
// merged, and their compressed footprint compared with raw storage.  It
// also shows the bit-width arithmetic of §5: E_C = ceil(log2 |dict|) and
// its growth across a merge that introduces new values.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"hyrise"
)

const rowsPerColumn = 400_000

func main() {
	rng := rand.New(rand.NewSource(11))

	fmt.Println("Figure 4 profiles: distinct values per column by domain")
	fmt.Println()
	for _, profile := range []struct {
		name    string
		domains []int // sampled per the published bucket shares
	}{
		{"Inventory Management", sampleDomains(rng, 0.78, 0.09)},
		{"Financial Accounting", sampleDomains(rng, 0.64, 0.12)},
	} {
		schema := hyrise.Schema{}
		for i := range profile.domains {
			schema = append(schema, hyrise.ColumnDef{
				Name: fmt.Sprintf("col%02d", i), Type: hyrise.Uint64,
			})
		}
		t, err := hyrise.NewTable(profile.name, schema)
		if err != nil {
			log.Fatal(err)
		}
		gens := make([]hyrise.Generator, len(profile.domains))
		for i, d := range profile.domains {
			gens[i] = hyrise.NewUniformGenerator(uint64(d), int64(i))
		}
		row := make([]any, len(schema))
		for r := 0; r < rowsPerColumn; r++ {
			for c := range row {
				row[c] = gens[c].Next()
			}
			if _, err := t.Insert(row); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := t.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
			log.Fatal(err)
		}

		st := t.Stats()
		raw := rowsPerColumn * 8 * len(schema)
		fmt.Printf("%s: %d columns x %d rows\n", profile.name, len(schema), rowsPerColumn)
		fmt.Printf("  raw 8-byte storage: %6.1f MB\n", float64(raw)/1e6)
		fmt.Printf("  dictionary-compressed: %6.1f MB (%.1fx smaller)\n",
			float64(st.SizeBytes)/1e6, float64(raw)/float64(st.SizeBytes))
		for _, cs := range st.Columns[:3] {
			fmt.Printf("    %s: %d distinct -> %d bits/tuple (raw 64)\n",
				cs.Def.Name, cs.UniqueMain, cs.Bits)
		}
		fmt.Println()
	}

	// Bit-width growth across a merge (paper Figure 5: 3 bits -> 4 bits).
	t, _ := hyrise.NewTable("widths", hyrise.Schema{{Name: "v", Type: hyrise.Uint64}})
	for i := 0; i < 1000; i++ {
		t.Insert([]any{uint64(i % 6)}) // 6 distinct -> 3 bits
	}
	t.RequestMerge(context.Background(), hyrise.MergeOptions{})
	before := t.Stats().Columns[0].Bits
	for i := 0; i < 100; i++ {
		t.Insert([]any{uint64(100 + i%3)}) // 3 new values -> 9 distinct
	}
	rep, _ := t.RequestMerge(context.Background(), hyrise.MergeOptions{})
	fmt.Printf("code-width growth: dictionary %d -> %d entries, %d -> %d bits per tuple\n",
		rep.Columns[0].UniqueMain, rep.Columns[0].UniqueMerged, before, rep.Columns[0].BitsAfter)
	fmt.Println("(matches the paper's Figure 5 example: ceil(log2 6)=3, ceil(log2 9)=4)")
}

// sampleDomains draws 12 column domain sizes: smallShare of columns from
// 1-32 distinct values, midShare from 33-1023, the rest from 1024-100k.
func sampleDomains(rng *rand.Rand, smallShare, midShare float64) []int {
	out := make([]int, 12)
	for i := range out {
		x := rng.Float64()
		switch {
		case x < smallShare:
			out[i] = 1 + rng.Intn(32)
		case x < smallShare+midShare:
			out[i] = 33 + rng.Intn(991)
		default:
			out[i] = 1024 + rng.Intn(100_000)
		}
	}
	return out
}
