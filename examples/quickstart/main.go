// Quickstart: one code path, two topologies.  The demo function below is
// written purely against hyrise.Store — create, write, query, merge,
// inspect — and main runs it twice: once over a flat table and once over
// the same table hash-partitioned across 8 shards.  Nothing in the demo
// knows which topology it is driving.
package main

import (
	"context"
	"fmt"
	"log"

	"hyrise"
)

func main() {
	schema := hyrise.Schema{
		{Name: "order_id", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "product", Type: hyrise.String},
	}

	flat, err := hyrise.NewTable("sales", schema)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := hyrise.NewShardedTable("sales", schema, "order_id", 8)
	if err != nil {
		log.Fatal(err)
	}

	for _, s := range []hyrise.Store{flat, sharded} {
		demo(s)
	}
}

// demo drives the full surface through the Store interface only.
func demo(s hyrise.Store) {
	st := s.StoreStats()
	if st.Shards > 1 {
		fmt.Printf("=== sharded table: %d shards keyed by %q ===\n", st.Shards, st.KeyColumn)
	} else {
		fmt.Println("=== flat table ===")
	}

	// Writes append to the delta partitions (paper §3).  InsertRows
	// batches validation and locking; on a sharded table it also groups
	// rows per destination shard.
	products := []string{"widget", "gadget", "sprocket"}
	batch := make([][]any, 0, 10000)
	for i := 0; i < 10000; i++ {
		batch = append(batch, []any{uint64(i), uint32(i % 7), products[i%3]})
	}
	ids, err := s.InsertRows(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after inserts:  main=%d rows, delta=%d rows\n", s.MainRows(), s.DeltaRows())

	// Updates are insert-only: a new version is appended, the old one
	// invalidated, and the history stays queryable.
	newRow, err := s.Update(ids[42], map[string]any{"qty": uint32(99)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: row %d -> new version at row %d (old version still stored, now invalid)\n",
		ids[42], newRow)
	if err := s.Delete(ids[7]); err != nil {
		log.Fatal(err)
	}

	// Typed handles span main and delta transparently; on a sharded table
	// they fan out across shards in parallel.
	orders, err := hyrise.ColumnOf[uint64](s, "order_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup order 42 -> rows %v (the new version)\n", orders.Lookup(42))
	fmt.Printf("range [100,104] -> %d rows\n", len(orders.Range(100, 104)))

	qty, err := hyrise.NumericColumnOf[uint32](s, "qty")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(qty) = %d\n", qty.Sum())

	// Conjunctive multi-column queries, column-at-a-time.
	res, err := hyrise.Query(s, []hyrise.Filter{
		{Column: "product", Op: hyrise.FilterEq, Value: "gadget"},
		{Column: "order_id", Op: hyrise.FilterBetween, Value: 0, Hi: 299},
	}, []string{"order_id"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query product=gadget AND order_id in [0,299] -> %d rows\n", res.Count())

	// The merge process folds the deltas into the compressed mains online
	// and commits atomically (paper §5-6); a sharded table merges all
	// shards in parallel.
	rep, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merge: %d delta rows folded, now main=%d rows in %s using %d threads\n",
		rep.RowsMerged, rep.MainRowsAfter, rep.Wall, rep.Threads)

	// Same answers after the merge.
	fmt.Printf("post-merge lookup order 42 -> rows %v\n", orders.Lookup(42))
	fmt.Printf("post-merge sum(qty) = %d\n", qty.Sum())

	st = s.StoreStats()
	fmt.Printf("storage: %d bytes total for %d rows (%d valid) in %d partition(s)\n\n",
		st.SizeBytes, st.Rows, st.ValidRows, len(st.Partitions))
}
