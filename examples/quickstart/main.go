// Quickstart: create a table, write rows, query across main and delta
// partitions, run the merge process and inspect what it did.
package main

import (
	"context"
	"fmt"
	"log"

	"hyrise"
)

func main() {
	// Every attribute gets a compressed main partition and an uncompressed
	// delta partition (paper §3).
	t, err := hyrise.NewTable("sales", hyrise.Schema{
		{Name: "order_id", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "product", Type: hyrise.String},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Writes append to the delta partitions.
	products := []string{"widget", "gadget", "sprocket"}
	for i := 0; i < 10000; i++ {
		if _, err := t.Insert([]any{uint64(i), uint32(i % 7), products[i%3]}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after inserts:  main=%d rows, delta=%d rows\n", t.MainRows(), t.DeltaRows())

	// Updates are insert-only: a new version is appended, the old one
	// invalidated, and the history stays queryable.
	newRow, err := t.Update(42, map[string]any{"qty": uint32(99)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: row 42 -> new version at row %d (42 still stored, now invalid)\n", newRow)
	if err := t.Delete(7); err != nil {
		log.Fatal(err)
	}

	// Queries span both partitions transparently.
	orders, err := hyrise.ColumnOf[uint64](t, "order_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup order 42 -> rows %v (the new version)\n", orders.Lookup(42))
	fmt.Printf("range [100,104] -> %d rows\n", len(orders.Range(100, 104)))

	qty, err := hyrise.NumericColumnOf[uint32](t, "qty")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(qty) = %d\n", qty.Sum())

	// The merge process folds the delta into the compressed main partition
	// online and commits atomically (paper §5-6).
	rep, err := t.Merge(context.Background(), hyrise.MergeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerge: %d delta rows folded, now main=%d rows in %s using %d threads\n",
		rep.RowsMerged, rep.MainRowsAfter, rep.Wall, rep.Threads)
	for _, cs := range rep.Columns[:1] {
		fmt.Printf("column %q: dict %d -> %d entries, codes %d -> %d bits "+
			"(step1a=%s step1b=%s step2=%s)\n",
			"order_id", cs.UniqueMain, cs.UniqueMerged, cs.BitsBefore, cs.BitsAfter,
			cs.Step1a, cs.Step1b, cs.Step2)
	}

	// Same answers after the merge.
	fmt.Printf("\npost-merge lookup order 42 -> rows %v\n", orders.Lookup(42))
	fmt.Printf("post-merge sum(qty) = %d\n", qty.Sum())

	st := t.Stats()
	fmt.Printf("\nstorage: %d bytes total for %d rows (%d valid)\n",
		st.SizeBytes, st.Rows, st.ValidRows)
}
