// Command networked demonstrates the network front end end to end in one
// process: it serves a 4-shard store with hyrise.Serve, keeps the merge
// scheduler compacting underneath, and drives a mixed workload through
// the pooled network client — concurrent writers, a pinned snapshot that
// stays frozen while they run, cross-shard-consistent aggregates, and a
// graceful drain.  The same client code talks to a standalone hyrised
// daemon: swap the listener for its address.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hyrise"
	"hyrise/client"
)

func main() {
	// Server side: a sharded store, a merge scheduler bounding the delta
	// fraction while traffic flows, and the network listener.
	st, err := hyrise.NewShardedTable("sales", hyrise.Schema{
		{Name: "order_id", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "product", Type: hyrise.String},
	}, "order_id", 4)
	if err != nil {
		log.Fatal(err)
	}
	sched := hyrise.NewScheduler(st, hyrise.SchedulerConfig{
		Fraction: 0.05,
		Interval: 5 * time.Millisecond,
	})
	if err := sched.Start(); err != nil {
		log.Fatal(err)
	}
	defer sched.Stop()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := hyrise.Serve(l, st, hyrise.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %q on %s\n", st.Name(), l.Addr())

	// Client side: one pooled client, shared by several goroutines.
	c, err := hyrise.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Bulk-load through the pipelined batch path.
	var batch [][]any
	for i := 1; i <= 2000; i++ {
		p := "widget"
		if i%5 == 0 {
			p = "gadget"
		}
		batch = append(batch, []any{uint64(i), uint32(i % 7), p})
	}
	if _, err := c.InsertBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows across %d shards\n", len(batch), c.Shards())

	// Pin a snapshot, then let concurrent writers churn.
	snap, err := c.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	pinned, _ := c.SumAt(snap, "qty")

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := uint64(w*300 + i + 1)
				rows, err := c.Lookup("order_id", key)
				if err != nil || len(rows) == 0 {
					continue
				}
				if _, err := c.Update(rows[0], map[string]any{"qty": 50 + i%10}); err != nil {
					log.Printf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The pinned aggregate is untouched by 1200 updates and however many
	// merges the scheduler ran; latest sees the churn.
	after, _ := c.SumAt(snap, "qty")
	latest, _ := c.Sum("qty")
	fmt.Printf("pinned sum %d -> %d (frozen), latest sum %d\n", pinned, after, latest)
	if err := c.Release(snap); err != nil {
		log.Fatal(err)
	}

	// A projected cross-shard query.
	res, err := c.Query([]client.Filter{
		{Column: "product", Op: client.Eq, Value: "gadget"},
		{Column: "order_id", Op: client.Between, Value: 1, Hi: 100},
	}, []string{"order_id", "qty"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query matched %d gadget orders in [1,100]\n", res.Count())

	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d rows (%d valid), delta %d, %d request(s) served\n",
		stats.Rows, stats.ValidRows, stats.DeltaRows, stats.Requests)

	// Graceful drain: in-flight requests finish, then sessions close.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
