// Command replication demonstrates op-log replication in one process: a
// replicating primary serves a 4-shard store, two followers bootstrap
// from its snapshot stream and apply its live ops, and a pooled client
// with Followers configured routes pinned-snapshot reads to them — exact
// at the snapshot's epoch no matter which server answers — while writers
// keep churning the primary.  The same wiring runs as separate daemons:
// hyrised -replicate for the primary, hyrised -follow for each follower.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"hyrise"
	"hyrise/client"
)

// waitReady polls a server's /healthz until it reports ready for the
// epoch (a follower answers 200 only once it has applied min_epoch), so
// topology convergence needs no fixed sleeps.
func waitReady(obsURL string, minEpoch uint64) error {
	deadline := time.Now().Add(10 * time.Second)
	url := fmt.Sprintf("%s/healthz?min_epoch=%d", obsURL, minEpoch)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not ready for epoch %d", obsURL, minEpoch)
		}
		time.Sleep(time.Millisecond)
	}
}

func main() {
	// Primary: a sharded store with an op log attached to its write path,
	// served over TCP.
	st, err := hyrise.NewShardedTable("sales", hyrise.Schema{
		{Name: "order_id", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "product", Type: hyrise.String},
	}, "order_id", 4)
	if err != nil {
		log.Fatal(err)
	}
	olog, err := hyrise.EnableReplication(st, 0)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	psrv, err := hyrise.Serve(pl, st, hyrise.ServerOptions{OpLog: olog})
	if err != nil {
		log.Fatal(err)
	}
	defer psrv.Close()
	paddr := pl.Addr().String()
	fmt.Printf("primary %q on %s\n", st.Name(), paddr)

	// Two followers: each bootstraps over the wire from the primary's
	// snapshot stream, then applies its op stream; each is served as a
	// read-only replica on its own port, with its observability endpoint
	// (metrics + healthz) on another.
	var faddrs, fobs []string
	for i := 0; i < 2; i++ {
		rep, err := hyrise.Follow(paddr, hyrise.ReplicaOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer rep.Close()
		fl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		fsrv, err := hyrise.Serve(fl, hyrise.FollowStore(rep), hyrise.ServerOptions{Replica: rep})
		if err != nil {
			log.Fatal(err)
		}
		defer fsrv.Close()
		ol, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ol.Close()
		go http.Serve(ol, fsrv.ObsHandler())
		faddrs = append(faddrs, fl.Addr().String())
		fobs = append(fobs, "http://"+ol.Addr().String())
		// A follower is ready as soon as it has a primary heartbeat; no
		// startup sleep needed.
		if err := waitReady(fobs[i], 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("follower %d on %s (bootstrapped at epoch %d)\n",
			i, fl.Addr(), rep.AppliedEpoch())
	}

	// A routed client: snapshot reads go to any follower that has applied
	// the snapshot's epoch, latest reads to any follower lagging at most
	// MaxStaleness epochs; everything else (and every failure) falls back
	// to the primary.
	c, err := client.DialOptions(paddr, client.Options{
		Followers:    faddrs,
		MaxStaleness: 1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	var batch [][]any
	for i := 1; i <= 2000; i++ {
		batch = append(batch, []any{uint64(i), uint32(i % 7), "widget"})
	}
	if _, err := c.InsertBatch(batch); err != nil {
		log.Fatal(err)
	}

	// Pin a snapshot and let writers churn underneath.
	snap, err := c.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	epoch, _ := c.SnapshotEpoch(snap)
	pinned, err := c.SumAt(snap, "qty")
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := uint64(w*200 + i + 1)
				rows, err := c.Lookup("order_id", key)
				if err != nil || len(rows) == 0 {
					continue
				}
				if _, err := c.Update(rows[0], map[string]any{"qty": 50 + i%10}); err != nil {
					log.Printf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Routed snapshot reads while the churn runs: the answer is frozen at
	// the pinned epoch whichever server serves it.
	for i := 0; i < 20; i++ {
		got, err := c.SumAt(snap, "qty")
		if err != nil {
			log.Fatal(err)
		}
		if got != pinned {
			log.Fatalf("snapshot read moved: %d then %d", pinned, got)
		}
	}
	wg.Wait()
	fmt.Printf("pinned sum %d stayed frozen at epoch %d through 800 updates\n", pinned, epoch)

	// Lag and role are observable per server.
	for i, addr := range faddrs {
		fc, err := client.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		fs, err := fc.ServerStats()
		fc.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("follower %d: role=%s applied=%d lag=%d\n", i, fs.Role, fs.AppliedEpoch, fs.Lag)
	}
	ps, err := c.ServerStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primary: %d follower(s), op log holds %d ops\n", ps.Followers, ps.OplogEntries)

	// Quiesce, converge, and prove the followers are exact: a fresh
	// snapshot's epoch is applied by both, and the routed aggregate equals
	// the primary's.
	if err := c.Release(snap); err != nil {
		log.Fatal(err)
	}
	snap2, err := c.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	e2, _ := c.SnapshotEpoch(snap2)
	for i, obs := range fobs {
		// /healthz?min_epoch answers 200 only once the follower has
		// applied the epoch — readiness, not a fixed delay.
		if err := waitReady(obs, e2); err != nil {
			log.Fatal(err)
		}
		// And the follower's own metrics snapshot agrees, asserted from
		// the client side via the OpMetrics wire op.
		fc, err := client.Dial(faddrs[i])
		if err != nil {
			log.Fatal(err)
		}
		samples, err := fc.Metrics()
		fc.Close()
		if err != nil {
			log.Fatal(err)
		}
		applied, ok := client.MetricValue(samples, "hyrise_replica_applied_epoch")
		if !ok || uint64(applied) < e2 {
			log.Fatalf("follower %d metrics: applied epoch %v, want >= %d", i, applied, e2)
		}
		lag, _ := client.MetricValue(samples, "hyrise_replica_lag_epochs")
		fmt.Printf("follower %d: applied_epoch=%d lag=%d (via client.Metrics)\n",
			i, uint64(applied), uint64(lag))
	}
	final, err := c.SumAt(snap2, "qty")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("followers converged to epoch %d; final sum %d\n", e2, final)
	c.Release(snap2)
	fmt.Println("replication demo done")
}
