package hyrise_test

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"hyrise"
	"hyrise/client"
)

// serverClientCounts is the concurrency axis of the server benchmarks:
// the CI smoke emits these as the BENCH_server.json perf trajectory.
var serverClientCounts = []int{1, 4, 8}

// benchServer serves a preloaded 4-shard store on loopback TCP and
// returns its address.
func benchServer(b *testing.B, preload int) string {
	b.Helper()
	addr, _ := benchServerOpts(b, preload, hyrise.ServerOptions{})
	return addr
}

// benchServerOpts is benchServer with explicit server options, also
// returning the server (the observability benchmarks scrape it).
func benchServerOpts(b *testing.B, preload int, opts hyrise.ServerOptions) (string, *hyrise.DBServer) {
	b.Helper()
	st, err := hyrise.NewShardedTable("bench", hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}, "k", 4)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]any, preload)
	for i := range rows {
		rows[i] = []any{uint64(i), uint64(i)}
	}
	if _, err := st.InsertRows(rows); err != nil {
		b.Fatal(err)
	}
	if _, err := st.MergeAll(b.Context(), hyrise.MergeAllOptions{}); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := hyrise.Serve(l, st, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv
}

// benchClients dials n independent clients (each with its own pool).
func benchClients(b *testing.B, addr string, n int) []*client.Client {
	b.Helper()
	cs := make([]*client.Client, n)
	for i := range cs {
		c, err := client.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		cs[i] = c
	}
	return cs
}

// runConcurrent splits b.N ops across the clients and waits.
func runConcurrent(b *testing.B, cs []*client.Client, op func(c *client.Client, i int) error) {
	var wg sync.WaitGroup
	per := b.N / len(cs)
	var failed sync.Once
	for ci, c := range cs {
		wg.Add(1)
		go func(ci int, c *client.Client) {
			defer wg.Done()
			lo, hi := ci*per, (ci+1)*per
			if ci == len(cs)-1 {
				hi = b.N
			}
			for i := lo; i < hi; i++ {
				if err := op(c, i); err != nil {
					failed.Do(func() { b.Error(err) })
					return
				}
			}
		}(ci, c)
	}
	wg.Wait()
}

// BenchmarkServerLookup measures point-read throughput over the wire as
// concurrent clients scale.
func BenchmarkServerLookup(b *testing.B) {
	const preload = 100_000
	for _, clients := range serverClientCounts {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			addr := benchServer(b, preload)
			cs := benchClients(b, addr, clients)
			b.ResetTimer()
			runConcurrent(b, cs, func(c *client.Client, i int) error {
				rows, err := c.Lookup("k", uint64(i%preload))
				if err == nil && len(rows) != 1 {
					err = fmt.Errorf("lookup found %d rows", len(rows))
				}
				return err
			})
		})
	}
}

// BenchmarkServerMixed measures a read-heavy mixed workload (80% lookup,
// 10% insert, 10% snapshot-pinned aggregate) across concurrent clients —
// the "real concurrent client traffic" shape the server exists for.
func BenchmarkServerMixed(b *testing.B) {
	const preload = 50_000
	for _, clients := range serverClientCounts {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			addr := benchServer(b, preload)
			cs := benchClients(b, addr, clients)
			snaps := make([]client.Snap, len(cs))
			for i, c := range cs {
				s, err := c.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				snaps[i] = s
			}
			next := make([]int, len(cs))
			for i := range next {
				next[i] = preload + i*1_000_000_000
			}
			idx := map[*client.Client]int{}
			for i, c := range cs {
				idx[c] = i
			}
			b.ResetTimer()
			runConcurrent(b, cs, func(c *client.Client, i int) error {
				ci := idx[c]
				switch i % 10 {
				case 0:
					next[ci]++
					_, err := c.Insert([]any{uint64(next[ci]), uint64(i)})
					return err
				case 1:
					_, err := c.ValidRowsAt(snaps[ci])
					return err
				default:
					_, err := c.Lookup("k", uint64(i%preload))
					return err
				}
			})
		})
	}
}

// BenchmarkServerInsertBatch measures pipelined bulk-load throughput
// (rows/op scales with the batch, so compare ns/op per 1k rows).
func BenchmarkServerInsertBatch(b *testing.B) {
	const batch = 1000
	addr := benchServer(b, 0)
	cs := benchClients(b, addr, 1)
	rows := make([][]any, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rows {
			rows[j] = []any{uint64(i*batch + j), uint64(j)}
		}
		if _, err := cs[0].InsertBatch(rows); err != nil {
			b.Fatal(err)
		}
	}
}
