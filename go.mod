module hyrise

go 1.24
