package hyrise_test

import (
	"context"
	"testing"
	"time"

	"hyrise"
)

// TestShardedPublicSurface exercises the sharded table end to end through
// the re-exported API: creation, routed inserts, fan-out reads, the
// cross-shard query runner, the parallel merge, the per-shard scheduler
// and the workload driver.
func TestShardedPublicSurface(t *testing.T) {
	st, err := hyrise.NewShardedTable("sales", hyrise.Schema{
		{Name: "order_id", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "product", Type: hyrise.String},
	}, "order_id", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		p := "widget"
		if i%4 == 0 {
			p = "gadget"
		}
		if _, err := st.Insert([]any{uint64(i), uint32(i % 7), p}); err != nil {
			t.Fatal(err)
		}
	}

	h, err := hyrise.ColumnOf[uint64](st, "order_id")
	if err != nil {
		t.Fatal(err)
	}
	if rows := h.Lookup(42); len(rows) != 1 {
		t.Fatalf("Lookup(42) = %v", rows)
	}
	if rows := h.Range(100, 149); len(rows) != 50 {
		t.Fatalf("Range = %d rows", len(rows))
	}

	nh, err := hyrise.NumericColumnOf[uint32](st, "qty")
	if err != nil {
		t.Fatal(err)
	}
	sumBefore := nh.Sum()

	res, err := hyrise.Query(st, []hyrise.Filter{
		{Column: "product", Op: hyrise.FilterEq, Value: "gadget"},
		{Column: "order_id", Op: hyrise.FilterBetween, Value: 0, Hi: 99},
	}, []string{"order_id"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 25 {
		t.Fatalf("query matched %d rows want 25", res.Count())
	}

	rep, err := st.MergeAll(context.Background(), hyrise.MergeAllOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsMerged != 400 {
		t.Fatalf("RowsMerged = %d", rep.RowsMerged)
	}
	if nh.Sum() != sumBefore {
		t.Fatal("merge changed the aggregate")
	}
	if rows := h.Lookup(42); len(rows) != 1 {
		t.Fatal("post-merge lookup missed")
	}

	// The driver runs a mixed workload against the sharded table.
	drv, err := hyrise.NewDriver(st, "order_id", hyrise.OLTPMix,
		hyrise.NewUniformGenerator(1000, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := drv.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 500 {
		t.Fatalf("driver ran %d ops", counts.Total())
	}

	// The sharded scheduler merges hot shards on its own.
	ms := hyrise.NewScheduler(st, hyrise.SchedulerConfig{
		Fraction: 0.01,
		Interval: time.Millisecond,
	})
	if err := ms.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 2000; i++ {
		if _, err := st.Insert([]any{uint64(i), uint32(1), "widget"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.DeltaRows() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ms.Stop()
	if err := ms.LastErr(); err != nil {
		t.Fatal(err)
	}
	if ms.Merges() == 0 {
		t.Fatal("scheduler never merged")
	}
	if rows := h.Lookup(1500); len(rows) != 1 {
		t.Fatal("row inserted during supervision lost")
	}
}
