package hyrise_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hyrise"
)

// TestIntegrationCSVToQueries drives the full ingest path: CSV import →
// multi-column queries → merge → identical answers → snapshot round trip.
func TestIntegrationCSVToQueries(t *testing.T) {
	var csv strings.Builder
	csv.WriteString("order_id,customer,qty,product\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&csv, "%d,%d,%d,%s\n", i, i%40, i%15,
			[]string{"widget", "gadget", "sprocket"}[i%3])
	}
	tb, n, err := hyrise.LoadCSV(strings.NewReader(csv.String()), hyrise.CSVOptions{
		TableName: "orders",
		Types:     map[string]hyrise.Type{"qty": hyrise.Uint32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("imported %d", n)
	}

	filters := []hyrise.Filter{
		{Column: "product", Op: hyrise.FilterEq, Value: "widget"},
		{Column: "customer", Op: hyrise.FilterBetween, Value: uint64(0), Hi: uint64(19)},
		{Column: "qty", Op: hyrise.FilterBetween, Value: uint32(5), Hi: uint32(9)},
	}
	before, err := hyrise.Query(tb, filters, []string{"order_id"})
	if err != nil {
		t.Fatal(err)
	}
	if before.Count() == 0 {
		t.Fatal("query matched nothing")
	}

	if _, err := tb.Merge(context.Background(), hyrise.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	after, err := hyrise.Query(tb, filters, []string{"order_id"})
	if err != nil {
		t.Fatal(err)
	}
	if after.Count() != before.Count() {
		t.Fatalf("merge changed query: %d vs %d", after.Count(), before.Count())
	}
	for i := range before.Rows {
		if before.Rows[i] != after.Rows[i] || before.Values[i][0] != after.Values[i][0] {
			t.Fatalf("row %d diverged across merge", i)
		}
	}

	// Snapshot round trip preserves query results.
	path := filepath.Join(t.TempDir(), "orders.hyr")
	if err := hyrise.SaveFile(tb, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := hyrise.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := hyrise.Query(loaded, filters, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Count() != before.Count() {
		t.Fatalf("snapshot changed query: %d vs %d", again.Count(), before.Count())
	}
}

// TestIntegrationSchedulerUnderLoad runs the scheduler against concurrent
// writers and checks the §4 invariant it exists to maintain: the delta
// fraction stays bounded while no writes are lost.
func TestIntegrationSchedulerUnderLoad(t *testing.T) {
	tb, err := hyrise.NewTable("t", hyrise.Schema{{Name: "k", Type: hyrise.Uint64}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		tb.Insert([]any{uint64(i % 1000)})
	}
	if _, err := tb.Merge(context.Background(), hyrise.MergeOptions{}); err != nil {
		t.Fatal(err)
	}

	s := hyrise.NewScheduler(tb, hyrise.SchedulerConfig{
		Fraction:     0.05,
		MinDeltaRows: 100,
		Interval:     2 * time.Millisecond,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, perWriter = 4, 20_000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := tb.Insert([]any{uint64(i % 997)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Stop()
	if s.LastErr() != nil {
		t.Fatal(s.LastErr())
	}
	want := 100_000 + writers*perWriter
	if tb.Rows() != want {
		t.Fatalf("rows %d want %d", tb.Rows(), want)
	}
	if got := tb.MainRows() + tb.DeltaRows(); got != want {
		t.Fatalf("main+delta %d want %d", got, want)
	}
	if s.Merges() == 0 {
		t.Fatal("scheduler never merged under sustained load")
	}
	// One final manual merge leaves a clean state.
	if _, err := tb.Merge(context.Background(), hyrise.MergeOptions{}); err != nil {
		t.Fatal(err)
	}
	if tb.DeltaRows() != 0 || tb.MainRows() != want {
		t.Fatalf("final state main=%d delta=%d", tb.MainRows(), tb.DeltaRows())
	}
}

// TestIntegrationNaiveOptimizedEquivalence merges two identical tables
// with the two algorithms and diffs the full contents.
func TestIntegrationNaiveOptimizedEquivalence(t *testing.T) {
	build := func() *hyrise.Table {
		tb, _ := hyrise.NewTable("t", hyrise.Schema{
			{Name: "a", Type: hyrise.Uint64},
			{Name: "b", Type: hyrise.String},
		})
		gen := hyrise.NewUniformGenerator(200, 1)
		for i := 0; i < 5000; i++ {
			v := gen.Next()
			tb.Insert([]any{v, fmt.Sprintf("s%03d", v%97)})
		}
		return tb
	}
	t1, t2 := build(), build()
	if _, err := t1.Merge(context.Background(), hyrise.MergeOptions{Algorithm: hyrise.Naive}); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Merge(context.Background(), hyrise.MergeOptions{Algorithm: hyrise.Optimized}); err != nil {
		t.Fatal(err)
	}
	if t1.Rows() != t2.Rows() {
		t.Fatal("row counts differ")
	}
	for r := 0; r < t1.Rows(); r++ {
		r1, _ := t1.Row(r)
		r2, _ := t2.Row(r)
		for c := range r1 {
			if r1[c] != r2[c] {
				t.Fatalf("row %d col %d: %v vs %v", r, c, r1[c], r2[c])
			}
		}
	}
}
