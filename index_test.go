package hyrise_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hyrise"
)

// mirrorSchema has two uint64 columns the tests keep identical per row:
// "a" gets a group-key index, "b" stays scan-only, so every read on "a"
// has a byte-comparable shadow on "b".
func mirrorSchema() hyrise.Schema {
	return hyrise.Schema{
		{Name: "id", Type: hyrise.Uint64},
		{Name: "a", Type: hyrise.Uint64},
		{Name: "b", Type: hyrise.Uint64},
	}
}

func newMirrorStores(t *testing.T) map[string]hyrise.Store {
	t.Helper()
	flat, err := hyrise.NewTable("mirror", mirrorSchema())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hyrise.NewShardedTable("mirror", mirrorSchema(), "id", 8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]hyrise.Store{"flat": flat, "sharded": sharded}
}

// TestStoreIndexEquivalence is the public-surface acceptance test for
// secondary indexes: on both topologies, every indexed read — direct
// handle reads, pinned-view reads and Query — must return exactly what
// the scan path returns, across churn, merges and garbage collection.
func TestStoreIndexEquivalence(t *testing.T) {
	for name, st := range newMirrorStores(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ha, err := hyrise.ColumnOf[uint64](st, "a")
			if err != nil {
				t.Fatal(err)
			}
			hb, err := hyrise.ColumnOf[uint64](st, "b")
			if err != nil {
				t.Fatal(err)
			}
			const domain = 100
			insert := func(n int) {
				t.Helper()
				rows := make([][]any, n)
				for i := range rows {
					v := uint64(rng.Intn(domain))
					rows[i] = []any{uint64(rng.Int63()), v, v}
				}
				if _, err := st.InsertRows(rows); err != nil {
					t.Fatal(err)
				}
			}
			merge := func() {
				t.Helper()
				if _, err := st.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
					t.Fatal(err)
				}
			}
			// check compares the indexed column against its shadow for a
			// sample of point and range reads, latest and pinned.
			check := func(stage string) {
				t.Helper()
				view := st.Snapshot()
				defer view.Release()
				for i := 0; i < 10; i++ {
					v := uint64(rng.Intn(domain))
					if got, want := ha.Lookup(v), hb.Lookup(v); !equalIDs(got, want) {
						t.Fatalf("%s: Lookup(%d) indexed %v scan %v", stage, v, got, want)
					}
					if got, want := ha.LookupAt(view, v), hb.LookupAt(view, v); !equalIDs(got, want) {
						t.Fatalf("%s: LookupAt(%d) indexed %v scan %v", stage, v, got, want)
					}
					lo := uint64(rng.Intn(domain))
					hi := lo + uint64(rng.Intn(10))
					if got, want := ha.Range(lo, hi), hb.Range(lo, hi); !equalIDs(got, want) {
						t.Fatalf("%s: Range(%d,%d) indexed %v scan %v", stage, lo, hi, got, want)
					}
					if got, want := ha.RangeAt(view, lo, hi), hb.RangeAt(view, lo, hi); !equalIDs(got, want) {
						t.Fatalf("%s: RangeAt(%d,%d) indexed %v scan %v", stage, lo, hi, got, want)
					}
					if got, want := ha.CountEqual(v), hb.CountEqual(v); got != want {
						t.Fatalf("%s: CountEqual(%d) indexed %d scan %d", stage, v, got, want)
					}
					qa, err := hyrise.Query(st, []hyrise.Filter{{Column: "a", Op: hyrise.FilterEq, Value: v}}, nil)
					if err != nil {
						t.Fatal(err)
					}
					qb, err := hyrise.Query(st, []hyrise.Filter{{Column: "b", Op: hyrise.FilterEq, Value: v}}, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !equalIDs(qa.Rows, qb.Rows) {
						t.Fatalf("%s: Query(=%d) indexed %v scan %v", stage, v, qa.Rows, qb.Rows)
					}
				}
			}

			insert(2000)
			merge()
			if err := st.CreateIndex("a"); err != nil {
				t.Fatal(err)
			}
			if err := st.CreateIndex("a"); err != nil { // idempotent
				t.Fatal(err)
			}
			if err := st.CreateIndex("nope"); err == nil {
				t.Fatal("CreateIndex on unknown column succeeded")
			}
			check("after first index")

			// Churn: overwrite, delete, insert, merge (GC on by default),
			// re-check at every stage so the index is exercised with a
			// delta tail, right after a rebuild, and against history.
			for round := 0; round < 3; round++ {
				stage := fmt.Sprintf("round %d", round)
				insert(500)
				for i := 0; i < 100; i++ {
					v := uint64(rng.Intn(domain))
					ids := hb.Lookup(v)
					if len(ids) == 0 {
						continue
					}
					id := ids[rng.Intn(len(ids))]
					if rng.Intn(2) == 0 {
						nv := uint64(rng.Intn(domain))
						if _, err := st.Update(id, map[string]any{"a": nv, "b": nv}); err != nil {
							t.Fatal(err)
						}
					} else if err := st.Delete(id); err != nil {
						t.Fatal(err)
					}
				}
				check(stage + " pre-merge")
				merge()
				check(stage + " post-merge")
			}

			stats := st.IndexStats()
			if len(stats) != 1 || stats[0].Column != "a" {
				t.Fatalf("IndexStats = %+v, want one entry for a", stats)
			}
			if stats[0].Postings != st.MainRows() {
				t.Fatalf("postings %d want main rows %d", stats[0].Postings, st.MainRows())
			}
			if stats[0].Builds == 0 {
				t.Fatalf("no builds recorded: %+v", stats[0])
			}
		})
	}
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
