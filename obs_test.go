package hyrise_test

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hyrise"
	"hyrise/client"
)

// obsServer serves a fresh 4-shard store and its observability endpoint
// on loopback, returning the data address and the obs base URL.
func obsServer(t *testing.T) (string, string, *hyrise.DBServer) {
	t.Helper()
	st, err := hyrise.NewShardedTable("obs", hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hyrise.Serve(l, st, hyrise.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	hs := httptest.NewServer(srv.ObsHandler())
	t.Cleanup(hs.Close)
	return l.Addr().String(), hs.URL, srv
}

// scrapeMetrics fetches and parses one Prometheus text exposition,
// failing the test on any malformed line.  Histogram bucket series keep
// their label-rendered names, so cumulativity is checkable per series.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil && val != "+Inf" {
			t.Fatalf("unparseable value in line %q: %v", line, err)
		}
		if _, dup := out[name]; dup {
			t.Fatalf("duplicate series %q", name)
		}
		out[name] = v
	}
	// Every histogram family: buckets cumulative and the +Inf bucket
	// equal to the family's _count.  The family key keeps the non-le
	// labels, so multi-label histograms (per-op latency, merge phases)
	// check per series, not conflated.
	splitBucket := func(name string) (fam, le string, ok bool) {
		i := strings.Index(name, "_bucket{")
		if i < 0 {
			return "", "", false
		}
		base := name[:i]
		labels := strings.Split(name[i+len("_bucket{"):len(name)-1], ",")
		var rest []string
		for _, l := range labels {
			if v, isLe := strings.CutPrefix(l, `le="`); isLe {
				le = strings.TrimSuffix(v, `"`)
			} else {
				rest = append(rest, l)
			}
		}
		if len(rest) > 0 {
			base += "{" + strings.Join(rest, ",") + "}"
		}
		return base, le, true
	}
	byFamily := make(map[string][]string)
	for name := range out {
		if fam, _, ok := splitBucket(name); ok {
			byFamily[fam] = append(byFamily[fam], name)
		}
	}
	for fam, buckets := range byFamily {
		type bound struct {
			le   float64
			name string
		}
		var bs []bound
		for _, name := range buckets {
			_, le, _ := splitBucket(name)
			b := bound{name: name}
			if le == "+Inf" {
				b.le = -1 // sorts last below
			} else {
				v, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le in %q: %v", name, err)
				}
				b.le = v
			}
			bs = append(bs, b)
		}
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].le == -1 {
				return false
			}
			if bs[j].le == -1 {
				return true
			}
			return bs[i].le < bs[j].le
		})
		prev := 0.0
		for _, b := range bs {
			if out[b.name] < prev {
				t.Fatalf("non-cumulative buckets in %s: %s = %v < %v",
					fam, b.name, out[b.name], prev)
			}
			prev = out[b.name]
		}
		countName := fam + "_count"
		if i := strings.Index(fam, "{"); i >= 0 {
			countName = fam[:i] + "_count" + fam[i:]
		}
		if cnt, ok := out[countName]; !ok || cnt != prev {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", fam, prev, cnt)
		}
	}
	return out
}

// TestObservabilityUnderLoad hammers a 4-shard store with concurrent
// writers, merges and readers while a poller scrapes /metrics every 10ms:
// every scrape must parse, counters must be monotonic scrape-over-scrape,
// and histograms must stay internally consistent (checked by the parser).
// Run it under -race: the poller races every instrument in the registry.
func TestObservabilityUnderLoad(t *testing.T) {
	addr, base, _ := obsServer(t)

	const (
		writers = 2
		readers = 2
		rows    = 256
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// A parse failure mid-scrape is a t.Fatal; make sure the hammer
	// goroutines are stopped and joined before the test returns, or a
	// late t.Errorf from one of them panics the harness.
	var stopOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	defer wg.Wait()
	defer stopAll()
	seed, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	ids := make([]int, rows)
	for i := range ids {
		if ids[i], err = seed.Insert([]any{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("writer %d: %v", w, err)
				return
			}
			defer c.Close()
			own := ids[w*rows/writers : (w+1)*rows/writers]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id, err := c.Update(own[i%len(own)], map[string]any{"v": uint64(i)})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				own[i%len(own)] = id
				if i%200 == 100 {
					if _, err := c.Merge(client.MergeOptions{}); err != nil &&
						!strings.Contains(err.Error(), "merge already in progress") {
						t.Errorf("writer %d: merge: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("reader %d: %v", rd, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Lookup("k", uint64(i%rows)); err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				if i%50 == 25 {
					snap, err := c.Snapshot()
					if err != nil {
						t.Errorf("reader %d: snapshot: %v", rd, err)
						return
					}
					if _, err := c.SumAt(snap, "v"); err != nil {
						t.Errorf("reader %d: sum: %v", rd, err)
						return
					}
					if err := c.Release(snap); err != nil {
						t.Errorf("reader %d: release: %v", rd, err)
						return
					}
				}
			}
		}(rd)
	}

	// The poller: 10ms scrapes, counters monotonic between scrapes.
	deadline := time.Now().Add(1500 * time.Millisecond)
	prev := map[string]float64{}
	scrapes := 0
	for time.Now().Before(deadline) && !t.Failed() {
		cur := scrapeMetrics(t, base)
		for name, was := range prev {
			monotonic := strings.HasSuffix(name, "_total") ||
				strings.Contains(name, "_total{") ||
				strings.Contains(name, "_bucket{") ||
				strings.HasSuffix(name, "_count") ||
				strings.HasSuffix(name, "_sum")
			if monotonic && cur[name] < was {
				t.Fatalf("counter %s went backwards: %v -> %v", name, was, cur[name])
			}
		}
		prev = cur
		scrapes++
		time.Sleep(10 * time.Millisecond)
	}
	stopAll()
	wg.Wait()
	if t.Failed() {
		return
	}
	if scrapes < 10 {
		t.Fatalf("only %d scrapes completed", scrapes)
	}

	// The final scrape must cover every instrumented subsystem.
	final := scrapeMetrics(t, base)
	for _, series := range []string{
		`hyrise_server_requests_total{op="lookup"}`,
		`hyrise_server_op_seconds_count{op="lookup"}`,
		"hyrise_server_connections",
		"hyrise_merge_total",
		"hyrise_merge_rows_merged_total",
		"hyrise_store_delta_fill_fraction",
		"hyrise_epoch_current",
		"hyrise_gc_watermark",
		`hyrise_index_reads_total{route="scanned"}`,
		"hyrise_query_seeds_total",
	} {
		if _, ok := final[series]; !ok {
			t.Errorf("series %s missing from /metrics", series)
		}
	}
	if final[`hyrise_server_requests_total{op="lookup"}`] == 0 {
		t.Error("lookup requests not counted")
	}
	if final["hyrise_merge_total"] == 0 {
		t.Error("merges not counted")
	}
	// Per-op latency histogram and request counter move together: the
	// counter increments before the observation, so the histogram can
	// only trail by requests in flight.
	reqs := final[`hyrise_server_requests_total{op="lookup"}`]
	obs := final[`hyrise_server_op_seconds_count{op="lookup"}`]
	if obs > reqs || reqs-obs > 64 {
		t.Errorf("lookup latency observations %v inconsistent with %v requests", obs, reqs)
	}
}

// TestHealthzAndPprof pins the readiness endpoint's primary-side
// semantics and that pprof is mounted on the private mux.
func TestHealthzAndPprof(t *testing.T) {
	addr, base, _ := obsServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert([]any{uint64(1), uint64(1)}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "role=primary") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	// A primary is "converged" to any epoch it has already reached, and
	// not to epochs from the future.
	if code, body = get("/healthz?min_epoch=1"); code != http.StatusOK {
		t.Fatalf("healthz min_epoch=1: %d %q", code, body)
	}
	if code, _ = get(fmt.Sprintf("/healthz?min_epoch=%d", uint64(1)<<62)); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with future min_epoch: %d, want 503", code)
	}
	if code, body = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof: %d %q", code, body)
	}
}

// TestClientMetricsAndServerStats round-trips the version-4 surface: the
// OpMetrics snapshot via client.Metrics, and ServerStats' uptime and
// cumulative per-op counters.
func TestClientMetricsAndServerStats(t *testing.T) {
	addr, _, _ := obsServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Protocol() < 4 {
		t.Fatalf("negotiated protocol %d, want >= 4", c.Protocol())
	}
	if _, err := c.Insert([]any{uint64(7), uint64(7)}); err != nil {
		t.Fatal(err)
	}
	const lookups = 5
	for i := 0; i < lookups; i++ {
		if _, err := c.Lookup("k", uint64(7)); err != nil {
			t.Fatal(err)
		}
	}

	samples, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := client.MetricValue(samples, `hyrise_server_requests_total{op="lookup"}`)
	if !ok || v < lookups {
		t.Fatalf("metrics lookup counter = %v, %v; want >= %d", v, ok, lookups)
	}
	if _, ok := client.MetricValue(samples, "hyrise_store_main_rows"); !ok {
		t.Fatal("store gauges missing from OpMetrics snapshot")
	}

	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Uptime <= 0 {
		t.Fatalf("uptime %v, want > 0", st.Uptime)
	}
	var found *client.OpCount
	for i := range st.Ops {
		if st.Ops[i].Op == "lookup" {
			found = &st.Ops[i]
		}
	}
	if found == nil || found.Requests < lookups {
		t.Fatalf("ServerStats.Ops lookup = %+v, want >= %d requests", found, lookups)
	}
	if found.Errors != 0 {
		t.Fatalf("lookup errors %d, want 0", found.Errors)
	}
	// A server-side failure lands in the op's error counter (a bad
	// column would be rejected client-side and never reach the wire, so
	// use an unknown snapshot token).
	if _, err := c.LookupAt(client.Snap(1<<40), "k", uint64(7)); err == nil {
		t.Fatal("lookup at bogus snapshot succeeded")
	}
	st, err = c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	var nerr uint64
	for _, oc := range st.Ops {
		if oc.Op == "lookup" {
			nerr = oc.Errors
		}
	}
	if nerr != 1 {
		t.Fatalf("lookup errors after bad request = %d, want 1", nerr)
	}
}

// TestNoMetricsServer pins the disabled mode: requests still work, the
// endpoint answers 404 on /metrics, and ServerStats carries no counters.
func TestNoMetricsServer(t *testing.T) {
	st, err := hyrise.NewTable("plain", hyrise.Schema{{Name: "k", Type: hyrise.Uint64}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hyrise.Serve(l, st, hyrise.ServerOptions{NoMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.ObsHandler())
	defer hs.Close()

	c, err := client.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Insert([]any{uint64(1)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with NoMetrics: %d, want 404", resp.StatusCode)
	}
	// healthz still works (readiness is not a metrics feature).
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz with NoMetrics: %d", resp.StatusCode)
	}
	samples, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Fatalf("OpMetrics with NoMetrics returned %d samples", len(samples))
	}
	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Ops) != 0 {
		t.Fatalf("ServerStats.Ops with NoMetrics: %+v", stats.Ops)
	}
	if stats.Uptime <= 0 {
		t.Fatal("uptime should be tracked even with metrics disabled")
	}
}
