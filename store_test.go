package hyrise_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyrise"
)

func kvSchema() hyrise.Schema {
	return hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}
}

// newStores returns one Store per topology, built from the same schema.
func newStores(t *testing.T) map[string]hyrise.Store {
	t.Helper()
	flat, err := hyrise.NewTable("kv", kvSchema())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hyrise.NewShardedTable("kv", kvSchema(), "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]hyrise.Store{"flat": flat, "sharded": sharded}
}

// replayStore replays a deterministic operation sequence against s purely
// through the Store surface (Insert/InsertRows/Update/Delete/RequestMerge
// and the unified ColumnOf/NumericColumnOf/Query reads) and returns a
// transcript of every observation.  Two stores replayed with the same seed
// must produce identical transcripts — row ids are deliberately excluded,
// since the id spaces differ by topology.
func replayStore(t *testing.T, s hyrise.Store, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	kh, err := hyrise.ColumnOf[uint64](s, "k")
	if err != nil {
		t.Fatal(err)
	}
	vn, err := hyrise.NumericColumnOf[uint64](s, "v")
	if err != nil {
		t.Fatal(err)
	}

	const domain = 40 // dense key collisions
	var live []int    // row ids known valid, in replay order
	var obs []string

	// vals materializes the (k, v) pairs of rows as a sorted multiset.
	vals := func(rows []int) [][2]uint64 {
		out := make([][2]uint64, 0, len(rows))
		for _, r := range rows {
			row, err := s.Row(r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, [2]uint64{row[0].(uint64), row[1].(uint64)})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i][0] != out[j][0] {
				return out[i][0] < out[j][0]
			}
			return out[i][1] < out[j][1]
		})
		return out
	}

	record := func(step int) {
		obs = append(obs, fmt.Sprintf("step=%d rows=%d valid=%d main=%d delta=%d",
			step, s.Rows(), s.ValidRows(), s.MainRows(), s.DeltaRows()))
		for k := uint64(0); k < domain; k++ {
			obs = append(obs, fmt.Sprintf("lookup(%d)=%v", k, vals(kh.Lookup(k))))
		}
		lo := rng.Uint64() % domain
		hi := lo + rng.Uint64()%10
		obs = append(obs, fmt.Sprintf("range(%d,%d)=%v", lo, hi, vals(kh.Range(lo, hi))))
		obs = append(obs, fmt.Sprintf("sum=%d distinct=%d", vn.Sum(), kh.Distinct()))
		res, err := hyrise.Query(s, []hyrise.Filter{
			{Column: "k", Op: hyrise.FilterBetween, Value: lo, Hi: hi},
		}, []string{"v"})
		if err != nil {
			t.Fatal(err)
		}
		projected := make([]uint64, 0, len(res.Values))
		for _, row := range res.Values {
			projected = append(projected, row[0].(uint64))
		}
		sort.Slice(projected, func(i, j int) bool { return projected[i] < projected[j] })
		obs = append(obs, fmt.Sprintf("query(%d,%d)=%v", lo, hi, projected))
	}

	// observeAt records the store's state as seen through a snapshot view:
	// the same observation set as record, evaluated with the *At reads.
	observeAt := func(view hyrise.ReadView) []string {
		var out []string
		out = append(out, fmt.Sprintf("snap-valid=%d", s.ValidRowsAt(view)))
		for k := uint64(0); k < domain; k++ {
			out = append(out, fmt.Sprintf("snap-lookup(%d)=%v", k, vals(kh.LookupAt(view, k))))
		}
		out = append(out, fmt.Sprintf("snap-range=%v", vals(kh.RangeAt(view, 5, 15))))
		out = append(out, fmt.Sprintf("snap-sum=%d", vn.SumAt(view)))
		res, err := hyrise.QueryAt(s, view, []hyrise.Filter{
			{Column: "k", Op: hyrise.FilterBetween, Value: uint64(0), Hi: uint64(domain)},
		}, []string{"v"})
		if err != nil {
			t.Fatal(err)
		}
		projected := make([]uint64, 0, len(res.Values))
		for _, row := range res.Values {
			projected = append(projected, row[0].(uint64))
		}
		sort.Slice(projected, func(i, j int) bool { return projected[i] < projected[j] })
		out = append(out, fmt.Sprintf("snap-query=%v", projected))
		return out
	}

	// A snapshot captured mid-history must keep answering with the state at
	// its capture point for the rest of the replay.
	const snapStep = 14
	var snapView hyrise.ReadView
	var snapWant []string

	for step := 0; step < 30; step++ {
		for op := 0; op < 80; op++ {
			switch rng.Intn(12) {
			case 0, 1, 2: // single insert
				id, err := s.Insert([]any{rng.Uint64() % domain, rng.Uint64() % 1000})
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, id)
			case 3, 4: // batch insert
				n := 1 + rng.Intn(5)
				batch := make([][]any, n)
				for i := range batch {
					batch[i] = []any{rng.Uint64() % domain, rng.Uint64() % 1000}
				}
				ids, err := s.InsertRows(batch)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, ids...)
			case 5, 6, 7: // update a live row; half the time change the key
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				changes := map[string]any{"v": rng.Uint64() % 1000}
				if rng.Intn(2) == 0 {
					changes["k"] = rng.Uint64() % domain
				}
				nid, err := s.Update(live[i], changes)
				if err != nil {
					t.Fatalf("update: %v", err)
				}
				live[i] = nid
			case 8: // delete a live row
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				if err := s.Delete(live[i]); err != nil {
					t.Fatalf("delete: %v", err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case 9: // stale-id operations fail identically
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				id := live[i]
				_ = s.Delete(id)
				err := s.Delete(id)
				obs = append(obs, fmt.Sprintf("stale-delete-errors=%v", err != nil))
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // read keeps the mix honest
				_ = kh.Lookup(rng.Uint64() % domain)
			}
		}
		if step%3 == 2 {
			if _, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{
				Threads: 1 + rng.Intn(4),
			}); err != nil {
				t.Fatal(err)
			}
		}
		record(step)
		if step == snapStep {
			// Capture mid-history: at capture time the snapshot answers
			// exactly like the live store (the model state at this point).
			snapView = s.Snapshot()
			snapWant = observeAt(snapView)
			obs = append(obs, snapWant...)
		}
	}
	// The rest of the history (inserts, updates, deletes, merges) has run;
	// the mid-history snapshot must still match the state at its capture.
	snapGot := observeAt(snapView)
	for i := range snapWant {
		if snapGot[i] != snapWant[i] {
			t.Fatalf("mid-history snapshot drifted at entry %d:\nat capture: %s\nat end:     %s",
				i, snapWant[i], snapGot[i])
		}
	}
	obs = append(obs, snapGot...)
	return obs
}

// TestStoreModelEquivalence replays the same deterministic workload once
// per topology, driving each store exclusively through the unified Store
// surface, and requires byte-identical observation transcripts: both
// topologies must expose exactly the same visible data at every step.
func TestStoreModelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			stores := newStores(t)
			want := replayStore(t, stores["flat"], seed)
			got := replayStore(t, stores["sharded"], seed)
			if len(want) != len(got) {
				t.Fatalf("transcript lengths: flat=%d sharded=%d", len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("transcript diverged at entry %d:\nflat:    %s\nsharded: %s",
						i, want[i], got[i])
				}
			}
		})
	}
}

// TestStoreConformance pins the interface contract: both topologies
// satisfy Store (also asserted at compile time in the package itself) and
// agree on basic behavior through the interface.
func TestStoreConformance(t *testing.T) {
	for name, s := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			if s.Name() != "kv" || len(s.Schema()) != 2 {
				t.Fatalf("identity: %q %v", s.Name(), s.Schema())
			}
			ids, err := s.InsertRows([][]any{
				{uint64(1), uint64(10)},
				{uint64(2), uint64(20)},
				{uint64(3), uint64(30)},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 3 {
				t.Fatalf("ids=%v", ids)
			}
			// A bad batch is rejected whole: nothing lands.
			if _, err := s.InsertRows([][]any{{uint64(4), uint64(40)}, {uint64(5)}}); err == nil {
				t.Fatal("short row accepted")
			}
			if s.Rows() != 3 {
				t.Fatalf("rows=%d after rejected batch", s.Rows())
			}
			if !s.IsValid(ids[0]) {
				t.Fatal("inserted row invalid")
			}
			row, err := s.Row(ids[1])
			if err != nil || row[0].(uint64) != 2 {
				t.Fatalf("row=%v err=%v", row, err)
			}
			rep, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.RowsMerged != 3 || s.MainRows() != 3 || s.DeltaRows() != 0 {
				t.Fatalf("merge: %+v main=%d delta=%d", rep, s.MainRows(), s.DeltaRows())
			}
			st := s.StoreStats()
			if st.Rows != 3 || len(st.Partitions) != len(s.Partitions()) {
				t.Fatalf("stats: %+v", st)
			}
			if _, ok := s.(*hyrise.ShardedTable); ok {
				if st.Shards != 8 || st.KeyColumn != "k" {
					t.Fatalf("sharded stats: %+v", st)
				}
			} else if st.Shards != 1 || st.KeyColumn != "" {
				t.Fatalf("flat stats: %+v", st)
			}
		})
	}
}

// TestNewDriverColumnType checks the typed error on non-uint64 driver
// columns, for both topologies.
func TestNewDriverColumnType(t *testing.T) {
	schema := hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "sku", Type: hyrise.String},
	}
	flat, err := hyrise.NewTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := hyrise.NewShardedTable("t", schema, "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]hyrise.Store{"flat": flat, "sharded": sharded} {
		for _, col := range []string{"qty", "sku"} {
			if _, err := hyrise.NewDriver(s, col, hyrise.OLTPMix, hyrise.NewUniformGenerator(10, 1), 1); !errors.Is(err, hyrise.ErrDriverColumnType) {
				t.Errorf("%s/%s: err=%v want ErrDriverColumnType", name, col, err)
			}
		}
		if _, err := hyrise.NewDriver(s, "missing", hyrise.OLTPMix, hyrise.NewUniformGenerator(10, 1), 1); !errors.Is(err, hyrise.ErrNoColumn) {
			t.Errorf("%s/missing: err=%v want ErrNoColumn", name, err)
		}
		if _, err := hyrise.NewDriver(s, "k", hyrise.OLTPMix, hyrise.NewUniformGenerator(10, 1), 1); err != nil {
			t.Errorf("%s/k: %v", name, err)
		}
	}
}

// TestStorePersistenceRoundTrip drives Save/Load through the Store surface
// for both topologies: the loaded store has the same topology, identical
// query results, and — for the sharded table — the same global row ids,
// invalidations and per-shard main/delta split.
func TestStorePersistenceRoundTrip(t *testing.T) {
	for name, s := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			var ids []int
			for i := 0; i < 500; i++ {
				id, err := s.Insert([]any{uint64(i % 50), uint64(i)})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			if err := s.Delete(ids[3]); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Update(ids[7], map[string]any{"v": uint64(9999)}); err != nil {
				t.Fatal(err)
			}
			if _, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
				t.Fatal(err)
			}
			// Fresh delta rows and a main invalidation after the merge.
			if _, err := s.InsertRows([][]any{{uint64(1), uint64(111)}, {uint64(2), uint64(222)}}); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(ids[10]); err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := hyrise.Save(s, &buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := hyrise.Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if _, isSharded := s.(*hyrise.ShardedTable); isSharded {
				lt, ok := loaded.(*hyrise.ShardedTable)
				if !ok {
					t.Fatalf("loaded %T, want *ShardedTable", loaded)
				}
				if lt.NumShards() != 8 || lt.KeyColumn() != "k" {
					t.Fatalf("topology: %d/%q", lt.NumShards(), lt.KeyColumn())
				}
			} else if _, ok := loaded.(*hyrise.Table); !ok {
				t.Fatalf("loaded %T, want *Table", loaded)
			}

			if loaded.Rows() != s.Rows() || loaded.ValidRows() != s.ValidRows() ||
				loaded.MainRows() != s.MainRows() || loaded.DeltaRows() != s.DeltaRows() {
				t.Fatalf("counts: rows=%d/%d valid=%d/%d main=%d/%d delta=%d/%d",
					loaded.Rows(), s.Rows(), loaded.ValidRows(), s.ValidRows(),
					loaded.MainRows(), s.MainRows(), loaded.DeltaRows(), s.DeltaRows())
			}
			// Every original row id resolves to the same values and validity
			// — for the sharded store this proves global ids survived.  Ids
			// reclaimed by the pre-save GC merge must stay reclaimed after
			// the reload (both sides fail identically).
			for _, id := range ids {
				want, werr := s.Row(id)
				have, herr := loaded.Row(id)
				if (werr == nil) != (herr == nil) {
					t.Fatalf("id %d: error diverged: %v vs %v", id, werr, herr)
				}
				if werr != nil {
					continue // reclaimed on both sides
				}
				for c := range want {
					if want[c] != have[c] {
						t.Fatalf("id %d col %d: %v want %v", id, c, have[c], want[c])
					}
				}
				if s.IsValid(id) != loaded.IsValid(id) {
					t.Fatalf("id %d validity diverged", id)
				}
			}
			// Identical query results, including row ids.
			for _, filters := range [][]hyrise.Filter{
				{{Column: "k", Op: hyrise.FilterEq, Value: uint64(7)}},
				{{Column: "k", Op: hyrise.FilterBetween, Value: uint64(10), Hi: uint64(20)}},
			} {
				want, err := hyrise.Query(s, filters, []string{"v"})
				if err != nil {
					t.Fatal(err)
				}
				have, err := hyrise.Query(loaded, filters, []string{"v"})
				if err != nil {
					t.Fatal(err)
				}
				if len(want.Rows) != len(have.Rows) {
					t.Fatalf("query rows: %d want %d", len(have.Rows), len(want.Rows))
				}
				for i := range want.Rows {
					if want.Rows[i] != have.Rows[i] || want.Values[i][0] != have.Values[i][0] {
						t.Fatalf("query row %d diverged", i)
					}
				}
			}
		})
	}
}
