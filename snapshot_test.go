package hyrise_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hyrise"
)

// snapSchema is the stress/acceptance schema: k is the shard key (updates
// to it relocate rows across shards), id is a stable logical identity and
// v binds the two (v = id*1e9 + k), so any torn or half-applied update is
// detectable from a single row.
func snapSchema() hyrise.Schema {
	return hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "id", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}
}

func checksum(id, k uint64) uint64 { return id*1_000_000_000 + k }

// TestSnapshotConsistentAcrossMergeAndMoves is the acceptance check: a
// Snapshot() taken on a 4-shard store returns identical results for the
// same query before, during and after a concurrent MergeAll and a
// concurrent batch of key-moving updates (run under -race in CI).
func TestSnapshotConsistentAcrossMergeAndMoves(t *testing.T) {
	st, err := hyrise.NewShardedTable("snap", snapSchema(), "k", 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	gids := make([]int, n)
	for i := 0; i < n; i++ {
		k := uint64(i)
		gid, err := st.Insert([]any{k, uint64(i), checksum(uint64(i), k)})
		if err != nil {
			t.Fatal(err)
		}
		gids[i] = gid
	}

	view := st.Snapshot()
	filters := []hyrise.Filter{
		{Column: "k", Op: hyrise.FilterBetween, Value: uint64(100), Hi: uint64(3000)},
	}
	baseline, err := hyrise.QueryAt(st, view, filters, []string{"id", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Count() == 0 {
		t.Fatal("baseline query empty")
	}
	sameAsBaseline := func(phase string) {
		got, err := hyrise.QueryAt(st, view, filters, []string{"id", "v"})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != baseline.Count() {
			t.Fatalf("%s: %d rows want %d", phase, got.Count(), baseline.Count())
		}
		for i := range got.Rows {
			if got.Rows[i] != baseline.Rows[i] ||
				got.Values[i][0] != baseline.Values[i][0] ||
				got.Values[i][1] != baseline.Values[i][1] {
				t.Fatalf("%s: row %d diverged: %v/%v want %v/%v", phase, i,
					got.Rows[i], got.Values[i], baseline.Rows[i], baseline.Values[i])
			}
		}
	}
	sameAsBaseline("before")

	// Concurrent churn: a cross-shard merge plus a batch of key-moving
	// updates rewriting half the rows.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := st.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
			t.Errorf("merge: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < n; i += 2 {
			nk := uint64(rng.Intn(1 << 20))
			if _, err := st.Update(gids[i], map[string]any{
				"k": nk, "v": checksum(uint64(i), nk),
			}); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
		}
	}()
	// Re-run the query under the frozen view while both are in flight.
	for i := 0; i < 50; i++ {
		sameAsBaseline("during")
	}
	wg.Wait()
	sameAsBaseline("after")

	// Sanity: latest reads do see the churn.
	latest, err := hyrise.Query(st, filters, []string{"id", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if latest.Count() == baseline.Count() {
		t.Log("latest query count unchanged (possible but unlikely); not a failure")
	}
}

// TestSnapshotStress runs continuous Snapshot() scans concurrently with
// MergeAll, key-changing (cross-shard-moving) updates and deletes,
// asserting every snapshot's row set is internally consistent: each stable
// id visible exactly once with a matching checksum, each deletable id at
// most once, and aggregates repeatable under the same view.  Run under
// -race in CI.  Variants cover 1/4/8 shards; the parallel-merge ones push
// every shard merge through the intra-column range-partitioned kernels
// (fewer rounds to keep CI time bounded).
func TestSnapshotStress(t *testing.T) {
	cases := []struct {
		name   string
		shards int
		rounds int
		merge  hyrise.MergeOptions
	}{
		{"4-shards", 4, 150, hyrise.MergeOptions{Threads: 2}},
		{"1-shard-parallel-merge", 1, 40, hyrise.MergeOptions{Threads: 4, Strategy: hyrise.IntraColumn}},
		{"8-shards-parallel-merge", 8, 40, hyrise.MergeOptions{Threads: 4, Strategy: hyrise.IntraColumn}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			snapshotStress(t, c.shards, c.rounds, c.merge)
		})
	}
}

func snapshotStress(t *testing.T, shards, rounds int, merge hyrise.MergeOptions) {
	const (
		mutators  = 4
		scanners  = 3
		stableIDs = 200 // ids [0, stableIDs): updated forever, never deleted
		dyingIDs  = 100 // ids [stableIDs, stableIDs+dyingIDs): deleted mid-run
	)
	st, err := hyrise.NewShardedTable("stress", snapSchema(), "k", shards)
	if err != nil {
		t.Fatal(err)
	}
	total := stableIDs + dyingIDs
	gids := make([]int, total)
	for id := 0; id < total; id++ {
		k := uint64(id * 31)
		gid, err := st.Insert([]any{k, uint64(id), checksum(uint64(id), k)})
		if err != nil {
			t.Fatal(err)
		}
		gids[id] = gid
	}

	stop := make(chan struct{})
	var wg, mutWG sync.WaitGroup

	// Mutators: each owns a disjoint id range; key-changing updates move
	// rows between shards, dying ids are deleted partway through.
	for m := 0; m < mutators; m++ {
		mutWG.Add(1)
		go func(m int) {
			defer mutWG.Done()
			rng := rand.New(rand.NewSource(int64(m)))
			lo, hi := m*stableIDs/mutators, (m+1)*stableIDs/mutators
			dlo := stableIDs + m*dyingIDs/mutators
			dhi := stableIDs + (m+1)*dyingIDs/mutators
			for r := 0; r < rounds; r++ {
				for id := lo; id < hi; id++ {
					nk := uint64(rng.Intn(1 << 16))
					ngid, err := st.Update(gids[id], map[string]any{
						"k": nk, "v": checksum(uint64(id), nk),
					})
					if err != nil {
						t.Errorf("mutator %d id %d: %v", m, id, err)
						return
					}
					gids[id] = ngid
				}
				if r == rounds/2 {
					for id := dlo; id < dhi; id++ {
						if err := st.Delete(gids[id]); err != nil {
							t.Errorf("mutator %d delete id %d: %v", m, id, err)
							return
						}
					}
				}
			}
		}(m)
	}

	// Merger: continuous cross-shard merges until the scanners stop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.MergeAll(context.Background(), hyrise.MergeAllOptions{
				Merge: merge,
			}); err != nil {
				t.Errorf("MergeAll: %v", err)
				return
			}
		}
	}()

	// Scanners: capture a snapshot, verify its row set is internally
	// consistent, and check aggregate repeatability under the same view.
	var snapshots atomic.Int64
	idh, err := hyrise.ColumnOf[uint64](st, "id")
	if err != nil {
		t.Fatal(err)
	}
	kh, err := hyrise.ColumnOf[uint64](st, "k")
	if err != nil {
		t.Fatal(err)
	}
	vh, err := hyrise.NumericColumnOf[uint64](st, "v")
	if err != nil {
		t.Fatal(err)
	}
	for sc := 0; sc < scanners; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := st.Snapshot()
				// Collect the visible row set first, verify after: reading
				// other columns from inside the scan callback would re-lock
				// the shard the scan already holds.
				type visible struct {
					row int
					id  uint64
				}
				var rows []visible
				seen := make(map[uint64]int, total)
				idh.ScanAt(view, func(row int, id uint64) bool {
					rows = append(rows, visible{row, id})
					seen[id]++
					return true
				})
				for _, r := range rows {
					k, err1 := kh.Get(r.row)
					v, err2 := vh.Get(r.row)
					if err1 != nil || err2 != nil || v != checksum(r.id, k) {
						t.Errorf("scanner %d: row %d torn: id=%d k=%d v=%d (%v/%v)",
							sc, r.row, r.id, k, v, err1, err2)
						return
					}
				}
				for id := uint64(0); id < stableIDs; id++ {
					if seen[id] != 1 {
						t.Errorf("scanner %d: stable id %d visible %d times in snapshot (epoch %d), want exactly 1",
							sc, id, seen[id], view.Epoch())
						return
					}
				}
				for id := uint64(stableIDs); id < uint64(total); id++ {
					if seen[id] > 1 {
						t.Errorf("scanner %d: dying id %d visible %d times in snapshot, want at most 1",
							sc, id, seen[id])
						return
					}
				}
				if s1, s2 := vh.SumAt(view), vh.SumAt(view); s1 != s2 {
					t.Errorf("scanner %d: sum not repeatable under one view: %d vs %d", sc, s1, s2)
					return
				}
				if c1, c2 := st.ValidRowsAt(view), st.ValidRowsAt(view); c1 != c2 || c1 != len(seen) {
					t.Errorf("scanner %d: ValidRowsAt unstable or inconsistent: %d/%d vs %d scanned",
						sc, c1, c2, len(seen))
					return
				}
				snapshots.Add(1)
			}
		}(sc)
	}

	mutWG.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if snapshots.Load() == 0 {
		t.Fatal("scanners never completed a snapshot")
	}

	// Final state: every stable id still has exactly one current row, the
	// dying ids are gone, and a last consistent count matches.
	if _, err := st.MergeAll(context.Background(), hyrise.MergeAllOptions{}); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < stableIDs; id++ {
		if n := len(idh.Lookup(uint64(id))); n != 1 {
			t.Fatalf("final: stable id %d has %d current rows", id, n)
		}
	}
	if got := st.ValidRows(); got != stableIDs {
		t.Fatalf("final ValidRows = %d want %d", got, stableIDs)
	}
	t.Logf("stress: %d consistent snapshots verified", snapshots.Load())
}

// TestStoreSnapshotInterface pins Snapshot/ValidRowsAt/VisibleAt through
// the Store interface for both topologies, including the zero-ReadView
// latest semantics.
func TestStoreSnapshotInterface(t *testing.T) {
	for name, s := range newStores(t) {
		t.Run(name, func(t *testing.T) {
			id0, err := s.Insert([]any{uint64(1), uint64(10)})
			if err != nil {
				t.Fatal(err)
			}
			v1 := s.Snapshot()
			id1, err := s.Update(id0, map[string]any{"k": uint64(2)})
			if err != nil {
				t.Fatal(err)
			}
			v2 := s.Snapshot()

			if !s.VisibleAt(v1, id0) || s.VisibleAt(v2, id0) {
				t.Error("old version visibility wrong")
			}
			if s.VisibleAt(v1, id1) || !s.VisibleAt(v2, id1) {
				t.Error("new version visibility wrong")
			}
			if s.ValidRowsAt(v1) != 1 || s.ValidRowsAt(v2) != 1 {
				t.Errorf("ValidRowsAt: %d/%d want 1/1", s.ValidRowsAt(v1), s.ValidRowsAt(v2))
			}
			// Zero ReadView reads latest, mirroring IsValid.
			var latest hyrise.ReadView
			if s.VisibleAt(latest, id0) != s.IsValid(id0) || s.VisibleAt(latest, id1) != s.IsValid(id1) {
				t.Error("zero ReadView disagrees with IsValid")
			}
			if got := s.ValidRowsAt(latest); got != s.ValidRows() {
				t.Errorf("ValidRowsAt(latest) = %d want %d", got, s.ValidRows())
			}
			// Handle At-methods agree with the captured views.
			h, err := hyrise.ColumnOf[uint64](s, "k")
			if err != nil {
				t.Fatal(err)
			}
			if len(h.LookupAt(v1, 1)) != 1 || len(h.LookupAt(v2, 1)) != 0 {
				t.Error("LookupAt wrong across update")
			}
			if h.CountEqualAt(v2, 2) != 1 || len(h.RangeAt(v1, 0, 5)) != 1 {
				t.Error("CountEqualAt/RangeAt wrong")
			}
			nh, err := hyrise.NumericColumnOf[uint64](s, "v")
			if err != nil {
				t.Fatal(err)
			}
			if nh.SumAt(v1) != 10 || nh.SumAt(v2) != 10 {
				t.Error("SumAt wrong")
			}
			if mn, ok := nh.MinAt(v1); !ok || mn != 10 {
				t.Error("MinAt wrong")
			}
			if mx, ok := nh.MaxAt(v2); !ok || mx != 10 {
				t.Error("MaxAt wrong")
			}
			// QueryAt under the old view finds the old key.
			res, err := hyrise.QueryAt(s, v1, []hyrise.Filter{
				{Column: "k", Op: hyrise.FilterEq, Value: uint64(1)},
			}, []string{"v"})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count() != 1 || fmt.Sprint(res.Values[0][0]) != "10" {
				t.Errorf("QueryAt(v1): %+v", res)
			}
		})
	}
}
