package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hyrise/client"
)

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its address plus a stop function that shuts it down gracefully
// and reports run's error.
func startDaemon(t *testing.T, cfg config) (string, func() error) {
	t.Helper()
	addrCh := make(chan string, 1)
	cfg.onReady = func(a string) { addrCh <- a }
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, testLogger(t)) }()
	select {
	case addr := <-addrCh:
		return addr, func() error {
			cancel()
			select {
			case err := <-runErr:
				return err
			case <-time.After(30 * time.Second):
				return fmt.Errorf("daemon did not stop")
			}
		}
	case err := <-runErr:
		cancel()
		t.Fatalf("daemon failed to start: %v", err)
		return "", nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
		return "", nil
	}
}

func e2eChecksum(id, k uint64) uint64 { return id*1_000_000_000 + k }

// TestHyrisedEndToEnd is the PR acceptance test: hyrised runs in-process
// on a 4-shard store, 4 concurrent clients do writes and pinned-snapshot
// reads while merges (scheduler + explicit MergeAll requests) run
// underneath, and every snapshot read is frozen and internally
// consistent.  The daemon then shuts down gracefully, compacts, saves
// its snapshot, and a restarted daemon serves the same data back.
func TestHyrisedEndToEnd(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "sales.hyr")
	cfg := config{
		addr:          "127.0.0.1:0",
		table:         "sales",
		schema:        "k:uint64,id:uint64,v:uint64",
		shards:        4,
		snapshot:      snapPath,
		index:         "id",
		mergeFraction: 0.01,
		mergeInterval: time.Millisecond,
		compact:       true,
		drain:         15 * time.Second,
	}
	addr, stopDaemon := startDaemon(t, cfg)

	const (
		clients   = 4
		idsEach   = 40
		roundsPer = 25
	)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Errorf("client %d: dial: %v", cl, err)
				return
			}
			defer c.Close()

			// Each client owns ids [base, base+idsEach).
			base := uint64(cl * idsEach)
			rows := make([][]any, idsEach)
			for i := range rows {
				id := base + uint64(i)
				k := id * 13
				rows[i] = []any{k, id, e2eChecksum(id, k)}
			}
			gids, err := c.InsertBatch(rows)
			if err != nil {
				t.Errorf("client %d: seed: %v", cl, err)
				return
			}

			seq := uint64(cl + 1)
			for r := 0; r < roundsPer; r++ {
				// Writes: key-moving updates of the client's own rows.
				for i := range gids {
					seq = seq*6364136223846793005 + 1442695040888963407
					id := base + uint64(i)
					nk := seq % (1 << 14)
					ngid, err := c.Update(gids[i], map[string]any{
						"k": nk, "v": e2eChecksum(id, nk),
					})
					if err != nil {
						t.Errorf("client %d: update: %v", cl, err)
						return
					}
					gids[i] = ngid
				}

				// Pinned-snapshot reads, verified for freezing and
				// internal consistency while everyone else writes and
				// merges run underneath.
				snap, err := c.Snapshot()
				if err != nil {
					t.Errorf("client %d: snapshot: %v", cl, err)
					return
				}
				sum1, err := c.SumAt(snap, "v")
				if err != nil {
					t.Errorf("client %d: sum: %v", cl, err)
					return
				}
				for i := 0; i < idsEach; i += 7 {
					id := base + uint64(i)
					rids, err := c.LookupAt(snap, "id", id)
					if err != nil || len(rids) != 1 {
						t.Errorf("client %d: id %d visible %d times under snap (%v)",
							cl, id, len(rids), err)
						return
					}
					row, err := c.Row(rids[0])
					if err != nil {
						t.Errorf("client %d: row: %v", cl, err)
						return
					}
					if row[2].(uint64) != e2eChecksum(row[1].(uint64), row[0].(uint64)) {
						t.Errorf("client %d: torn row under snap: %v", cl, row)
						return
					}
				}
				// More of the client's own writes, then the pin must not
				// have moved.
				for i := 0; i < 5; i++ {
					seq = seq*6364136223846793005 + 1442695040888963407
					id := base + uint64(i)
					nk := seq % (1 << 14)
					ngid, err := c.Update(gids[i], map[string]any{
						"k": nk, "v": e2eChecksum(id, nk),
					})
					if err != nil {
						t.Errorf("client %d: update: %v", cl, err)
						return
					}
					gids[i] = ngid
				}
				sum2, err := c.SumAt(snap, "v")
				if err != nil || sum1 != sum2 {
					t.Errorf("client %d: snapshot not frozen: %d then %d (%v)",
						cl, sum1, sum2, err)
					return
				}
				if err := c.Release(snap); err != nil {
					t.Errorf("client %d: release: %v", cl, err)
					return
				}

				// Explicit cross-shard merges from the client side, on
				// top of the daemon's scheduler; colliding with an
				// in-flight scheduled merge is a normal, typed outcome.
				if r%10 == 5 {
					if _, err := c.Merge(client.MergeOptions{Threads: 2}); err != nil &&
						!errors.Is(err, client.ErrMergeBusy) {
						t.Errorf("client %d: merge: %v", cl, err)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Graceful stop: drains, compacts, saves.
	if err := stopDaemon(); err != nil {
		t.Fatalf("daemon stop: %v", err)
	}

	// Restart from the snapshot and verify the data (and its topology)
	// survived, compacted.
	addr2, stopDaemon2 := startDaemon(t, cfg)
	c, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 4 {
		t.Fatalf("restarted topology: %d shards want 4", c.Shards())
	}
	n, err := c.ValidRows()
	if err != nil {
		t.Fatal(err)
	}
	if n != clients*idsEach {
		t.Fatalf("restarted valid rows %d want %d", n, clients*idsEach)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaRows != 0 {
		t.Fatalf("restart should serve a compacted store, delta=%d", stats.DeltaRows)
	}
	// Indexes are in-memory only; -index must have re-created them over
	// the reloaded snapshot.
	istats, err := c.IndexStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(istats) != 1 || istats[0].Column != "id" || istats[0].Postings != clients*idsEach {
		t.Fatalf("restarted index stats %+v want %d postings on id", istats, clients*idsEach)
	}
	for id := uint64(0); id < clients*idsEach; id += 17 {
		rids, err := c.Lookup("id", id)
		if err != nil || len(rids) != 1 {
			t.Fatalf("restarted lookup id %d: %d rows (%v)", id, len(rids), err)
		}
		row, err := c.Row(rids[0])
		if err != nil {
			t.Fatal(err)
		}
		if row[2].(uint64) != e2eChecksum(row[1].(uint64), row[0].(uint64)) {
			t.Fatalf("restarted row torn: %v", row)
		}
	}
	if err := stopDaemon2(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestShutdownReleasesStalePins: a client that captured snapshots and
// vanished without releasing them must not pin the shutdown save — the
// daemon releases all registered tokens before its final compacting
// merge, so the snapshot reloads fully garbage-collected.
func TestShutdownReleasesStalePins(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "stale.hyr")
	cfg := config{
		addr:     "127.0.0.1:0",
		table:    "t",
		schema:   "k:uint64,v:uint64",
		shards:   2,
		snapshot: snapPath,
		compact:  true,
		drain:    10 * time.Second,
	}
	addr, stopDaemon := startDaemon(t, cfg)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	ids := make([]int, n)
	for i := range ids {
		if ids[i], err = c.Insert([]any{uint64(i), uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Pin history and never release — the misbehaving client.
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Invalidate every row once; the dead versions are pinned by the
	// stale token until shutdown.
	for i := range ids {
		if ids[i], err = c.Update(ids[i], map[string]any{"v": uint64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close() // vanish without Release

	if err := stopDaemon(); err != nil {
		t.Fatalf("daemon stop: %v", err)
	}

	// The restarted daemon serves a compacted, garbage-collected store:
	// no deltas, no dead versions.
	addr2, stopDaemon2 := startDaemon(t, cfg)
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	stats, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaRows != 0 {
		t.Fatalf("restart should serve a compacted store, delta=%d", stats.DeltaRows)
	}
	if stats.Rows != stats.ValidRows || stats.ValidRows != n {
		t.Fatalf("stale pin leaked into the save: rows=%d valid=%d want %d",
			stats.Rows, stats.ValidRows, n)
	}
	// The current versions survived under their ids.
	for i, id := range ids {
		row, err := c2.Row(id)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if row[1].(uint64) != uint64(1000+i) {
			t.Fatalf("row %d: v=%v want %d", i, row[1], 1000+i)
		}
	}
	if err := stopDaemon2(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestParseSchema pins the -schema flag grammar.
func TestParseSchema(t *testing.T) {
	s, err := parseSchema("k:uint64, qty:uint32 ,product:string")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[0].Name != "k" || s[2].Name != "product" {
		t.Fatalf("schema %+v", s)
	}
	for _, bad := range []string{"", "k", "k:float", "k uint64"} {
		if _, err := parseSchema(bad); err == nil {
			t.Errorf("parseSchema(%q) accepted", bad)
		}
	}
}
