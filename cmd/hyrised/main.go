// Command hyrised is the standalone hyrise database server: it owns one
// table (flat or sharded), serves the full Store surface to network
// clients over the length-prefixed binary protocol (see internal/server),
// and keeps delta fractions bounded with a background merge scheduler
// while traffic flows.
//
// # Quick start
//
// Start a 4-shard server with a fresh table and a snapshot file:
//
//	$ hyrised -addr :4860 -shards 4 \
//	    -schema 'order_id:uint64,qty:uint32,product:string' \
//	    -snapshot /var/lib/hyrise/sales.hyr
//
// Point a Go client at it and run a mixed workload:
//
//	c, err := client.Dial("localhost:4860")   // hyrise/client
//	id, _ := c.Insert([]any{uint64(1), uint32(3), "widget"})
//	snap, _ := c.Snapshot()                   // frozen, cross-shard
//	rows, _ := c.LookupAt(snap, "order_id", 1)
//	sum, _ := c.SumAt(snap, "qty")            // consistent with rows
//	c.Merge(client.MergeOptions{})            // online, reads keep flowing
//
// On SIGINT/SIGTERM the daemon drains in-flight requests, stops the
// scheduler, folds the remaining deltas into the mains (-compact=false
// skips this), and saves the snapshot; at the next start the snapshot is
// loaded (its recorded topology wins over -shards) and served again.
//
// # Flags
//
//	-addr            listen address (default 127.0.0.1:4860)
//	-table           table name for a fresh store (default "main")
//	-schema          fresh-store schema, comma-separated col:type pairs
//	                 (types: uint32, uint64, string)
//	-key             hash-partitioning column (default: first column)
//	-shards          shard count for a fresh store; 1 = flat table
//	-snapshot        snapshot path: loaded at start when present, saved
//	                 on shutdown (empty = in-memory only)
//	-merge-fraction  delta/main fraction that triggers a merge; <= 0
//	                 disables the background scheduler (default 0.05)
//	-merge-interval  scheduler poll period (default 100ms)
//	-merge-threads   per-merge thread budget (0 = split evenly)
//	-merge-bg        merge with a single background thread
//	-gc              garbage-collect dead row versions during merges
//	                 (default true; -gc=false keeps full history forever)
//	-index           comma-separated columns to build group-key indexes
//	                 on at startup (indexes are in-memory, so a store
//	                 loaded from a snapshot re-indexes here)
//	-max-snapshots   snapshot registry capacity (default 1024; < 0 =
//	                 unlimited — every registered snapshot pins history)
//	-compact         merge all deltas before the shutdown save (default true)
//	-drain           graceful-shutdown timeout (default 10s)
//
// # Online resharding
//
// A running sharded daemon can change its active shard count without
// stopping: start hyrised with -reshard N and it acts as an admin client
// instead of a server — it dials -addr, asks the daemon there to reshard
// to N active shards (reads and writes keep flowing throughout; followers
// replay the same migration from the op log), prints the migration
// report, and exits:
//
//	$ hyrised -addr 127.0.0.1:4860 -reshard 8
//
//	-reshard         admin mode: reshard the server at -addr to N active
//	                 shards and exit (0 = serve normally)
//
// # Observability
//
// The daemon exposes the server's metrics registry over a private HTTP
// endpoint when -metrics-addr is set:
//
//	$ hyrised -addr :4860 -metrics-addr 127.0.0.1:9860
//	$ curl -s http://127.0.0.1:9860/metrics   # Prometheus text format
//	$ curl -s http://127.0.0.1:9860/healthz   # role + lag-aware readiness
//
// The endpoint also mounts net/http/pprof under /debug/pprof/.  Keep it
// on a private interface: pprof and metrics are operator surfaces, not
// client ones.
//
//	-metrics-addr        HTTP listen address for /metrics, /healthz and
//	                     /debug/pprof/ (empty = disabled)
//	-slow-op-threshold   log ops slower than this duration with opcode,
//	                     latency, rows touched and snapshot epoch
//	                     (0 = disabled)
//	-log-format          log output format: text or json (default text)
//
// # Replication
//
// A daemon started with -replicate keeps an epoch-stamped operation log
// of every write and serves it to subscribing followers; one started with
// -follow bootstraps its store from the primary's snapshot stream, serves
// reads only (writes fail with the read-only status), and keeps applying
// the primary's ops:
//
//	$ hyrised -addr :4860 -replicate                  # primary
//	$ hyrised -addr :4861 -follow 127.0.0.1:4860      # follower
//	$ hyrised -addr :4862 -follow 127.0.0.1:4860      # another
//
// Followers serve reads that are exact as of their applied epoch: a
// pooled client (hyrise/client with Options.Followers) routes snapshot
// reads to any follower that has applied the snapshot's epoch and latest
// reads to any follower within its staleness bound, falling back to the
// primary otherwise.
//
//	-replicate       keep an op log and serve replication subscribers
//	-oplog-cap       retained op-log entries (default 1<<20); followers
//	                 that fall further behind must re-bootstrap
//	-follow          primary address: run as a read-only follower
//	                 (excludes -replicate and -snapshot)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hyrise"
	"hyrise/client"
	"hyrise/internal/server"
)

type config struct {
	addr          string
	table         string
	schema        string
	key           string
	shards        int
	snapshot      string
	mergeFraction float64
	mergeInterval time.Duration
	mergeThreads  int
	mergeBg       bool
	index         string
	noGC          bool // -gc=false; zero value = GC on
	maxSnapshots  int  // 0 = server.DefaultMaxSnapshots
	compact       bool
	drain         time.Duration
	reshard       int
	replicate     bool
	oplogCap      int
	follow        string
	metricsAddr   string
	slowOp        time.Duration

	// onReady, when non-nil, receives the bound listen address once the
	// server is accepting (tests listen on :0 and need the real port).
	onReady func(addr string)
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:4860", "listen address")
	flag.StringVar(&cfg.table, "table", "main", "table name for a fresh store")
	flag.StringVar(&cfg.schema, "schema", "id:uint64,qty:uint32,product:string",
		"fresh-store schema as comma-separated col:type pairs")
	flag.StringVar(&cfg.key, "key", "", "hash-partitioning column (default: first column)")
	flag.IntVar(&cfg.shards, "shards", 1, "shard count for a fresh store (1 = flat)")
	flag.StringVar(&cfg.snapshot, "snapshot", "", "snapshot path (load on start, save on stop)")
	flag.Float64Var(&cfg.mergeFraction, "merge-fraction", 0.05,
		"delta fraction triggering a merge (<= 0 disables the scheduler)")
	flag.DurationVar(&cfg.mergeInterval, "merge-interval", 100*time.Millisecond, "scheduler poll period")
	flag.IntVar(&cfg.mergeThreads, "merge-threads", 0, "per-merge thread budget (0 = split evenly)")
	flag.BoolVar(&cfg.mergeBg, "merge-bg", false, "merge with a single background thread")
	flag.StringVar(&cfg.index, "index", "",
		"comma-separated columns to build group-key indexes on at startup")
	gc := flag.Bool("gc", true, "garbage-collect dead row versions during merges")
	flag.IntVar(&cfg.maxSnapshots, "max-snapshots", server.DefaultMaxSnapshots,
		"snapshot registry capacity (< 0 = unlimited)")
	flag.BoolVar(&cfg.compact, "compact", true, "merge all deltas before the shutdown save")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown timeout")
	flag.IntVar(&cfg.reshard, "reshard", 0,
		"admin mode: reshard the server at -addr to N active shards and exit (0 = serve)")
	flag.BoolVar(&cfg.replicate, "replicate", false, "keep an op log and serve replication subscribers")
	flag.IntVar(&cfg.oplogCap, "oplog-cap", 0, "retained op-log entries (0 = 1<<20)")
	flag.StringVar(&cfg.follow, "follow", "", "primary address: run as a read-only follower")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "",
		"HTTP listen address for /metrics, /healthz and /debug/pprof/ (empty = disabled)")
	flag.DurationVar(&cfg.slowOp, "slow-op-threshold", 0,
		"log ops slower than this duration (0 = disabled)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	flag.Parse()
	cfg.noGC = !*gc

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "hyrised: bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, logger); err != nil {
		logger.Error("hyrised failed", "err", err)
		os.Exit(1)
	}
}

// run owns the daemon lifecycle: open (or create) the store, start the
// merge scheduler, serve until ctx is cancelled, then drain, compact and
// save.  It is the whole daemon minus flags and signals, so tests run it
// in-process.
func run(ctx context.Context, cfg config, logger *slog.Logger) error {
	if cfg.reshard != 0 {
		return reshardRemote(cfg, logger)
	}
	if cfg.follow != "" {
		if cfg.replicate {
			return errors.New("-follow excludes -replicate (followers cannot chain)")
		}
		if cfg.snapshot != "" {
			return errors.New("-follow excludes -snapshot (the store comes from the primary)")
		}
	}

	var st hyrise.Store
	var rep *hyrise.Replica
	var err error
	if cfg.follow != "" {
		// Follower: the store is bootstrapped from the primary's snapshot
		// stream and advanced by its op stream; Follow returns after the
		// first heartbeat, so reads are servable immediately.
		rep, err = hyrise.Follow(cfg.follow, hyrise.ReplicaOptions{Logger: logger})
		if err != nil {
			return fmt.Errorf("follow %s: %w", cfg.follow, err)
		}
		defer rep.Close()
		st = hyrise.FollowStore(rep)
		logger.Info("following primary", "primary", cfg.follow, "table", st.Name(),
			"epoch", rep.AppliedEpoch(), "lsn", rep.AppliedLSN())
	} else if st, err = openStore(cfg, logger); err != nil {
		return err
	}
	if cfg.noGC {
		st.SetGC(false)
		logger.Info("garbage collection disabled (-gc=false): history kept forever")
	}

	// Group-key indexes are in-memory only, so a store loaded from a
	// snapshot (or bootstrapped from a primary) starts unindexed and is
	// re-indexed here; merges keep the indexes current from then on.
	for _, col := range strings.Split(cfg.index, ",") {
		col = strings.TrimSpace(col)
		if col == "" {
			continue
		}
		t0 := time.Now()
		if err := st.CreateIndex(col); err != nil {
			return fmt.Errorf("index %s: %w", col, err)
		}
		logger.Info("indexed column", "column", col, "took", time.Since(t0).Round(time.Microsecond))
	}

	var olog *hyrise.OpLog
	if cfg.replicate {
		if olog, err = hyrise.EnableReplication(st, cfg.oplogCap); err != nil {
			return fmt.Errorf("attach op log: %w", err)
		}
		logger.Info("replication enabled", "oplog_cap", olog.Cap())
	}

	var sched *hyrise.Scheduler
	if cfg.mergeFraction > 0 {
		sc := hyrise.SchedulerConfig{
			Fraction: cfg.mergeFraction,
			Interval: cfg.mergeInterval,
			Threads:  cfg.mergeThreads,
			OnError:  func(err error) { logger.Warn("merge failed", "err", err) },
		}
		if cfg.mergeBg {
			sc.Strategy = hyrise.Background
		}
		sched = hyrise.NewScheduler(st, sc)
		if err := sched.Start(); err != nil {
			return err
		}
		defer sched.Stop()
	}

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	sopts := server.Options{
		Logger:          logger,
		MaxSnapshots:    cfg.maxSnapshots,
		OpLog:           olog,
		SlowOpThreshold: cfg.slowOp,
	}
	if rep != nil {
		// Assign only a live replica: a typed-nil pointer in the interface
		// field would read as "follower" to the server.
		sopts.Replica = rep
	}
	srv, err := server.New(st, sopts)
	if err != nil {
		l.Close()
		return err
	}

	// The observability endpoint is a separate private HTTP listener:
	// metrics, health and pprof never share a port with the data protocol.
	var obsSrv *http.Server
	if cfg.metricsAddr != "" {
		ol, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			l.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		obsSrv = &http.Server{Handler: srv.ObsHandler()}
		go func() {
			if err := obsSrv.Serve(ol); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("metrics endpoint stopped", "addr", ol.Addr().String(), "err", err)
			}
		}()
		logger.Info("observability endpoint up", "addr", ol.Addr().String())
	}

	role := "primary"
	if rep != nil {
		role = "follower"
	}
	logger.Info("serving", "table", st.Name(), "shards", st.StoreStats().Shards,
		"role", role, "addr", l.Addr().String())
	if cfg.onReady != nil {
		cfg.onReady(l.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	logger.Info("draining", "timeout", cfg.drain)
	stalePins := srv.SnapshotCount()
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("shutdown incomplete: connections closed forcibly", "err", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, server.ErrServerClosed) {
		logger.Warn("serve stopped with error", "err", err)
	}
	if obsSrv != nil {
		obsSrv.Close()
	}
	if sched != nil {
		sched.Stop()
	}

	// Shutdown released every snapshot still registered (clients are gone,
	// so stale tokens must not pin dead versions into the shutdown save);
	// surface how many a misbehaving client left behind.
	if stalePins > 0 {
		logger.Info("released stale snapshot pins", "count", stalePins)
	}

	// Compact when deltas remain or (with GC on) dead versions linger in
	// the mains: the saved snapshot should reload fully merged and
	// reclaimed.
	needsCompact := st.DeltaRows() > 0 ||
		(!cfg.noGC && st.Rows() > st.ValidRows())
	if cfg.compact && needsCompact && rep == nil {
		// Fold the remaining deltas so the snapshot reloads fully merged
		// and garbage-collected; the stopped scheduler still carries the
		// configured merge budget.
		var err error
		if sched != nil {
			err = sched.MergeNow(context.Background())
		} else {
			_, err = st.RequestMerge(context.Background(), hyrise.MergeOptions{Threads: cfg.mergeThreads})
		}
		if err != nil {
			logger.Warn("final merge failed", "err", err)
		}
	}
	if cfg.snapshot != "" {
		if err := hyrise.SaveFile(st, cfg.snapshot); err != nil {
			return fmt.Errorf("save snapshot: %w", err)
		}
		logger.Info("saved snapshot", "path", cfg.snapshot, "rows", st.Rows())
	}
	return nil
}

// reshardRemote is the -reshard admin mode: dial the daemon at -addr as
// an ordinary client, ask it to reshard online, report, exit.
func reshardRemote(cfg config, logger *slog.Logger) error {
	c, err := client.Dial(cfg.addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.addr, err)
	}
	defer c.Close()
	rep, err := c.Reshard(cfg.reshard)
	if err != nil {
		return fmt.Errorf("reshard to %d: %w", cfg.reshard, err)
	}
	logger.Info("resharded",
		"from", rep.From, "to", rep.To, "rows_migrated", rep.RowsMigrated,
		"wall", rep.Wall.Round(time.Microsecond),
		"cutover", rep.Cutover.Round(time.Microsecond),
		"map_version", rep.MapVersion, "cutover_epoch", rep.CutoverEpoch)
	return nil
}

// openStore loads the snapshot when it exists (the file's topology wins)
// and otherwise creates a fresh store from -schema/-key/-shards.
func openStore(cfg config, logger *slog.Logger) (hyrise.Store, error) {
	if cfg.snapshot != "" {
		if _, err := os.Stat(cfg.snapshot); err == nil {
			st, err := hyrise.LoadFile(cfg.snapshot)
			if err != nil {
				return nil, fmt.Errorf("load snapshot: %w", err)
			}
			stats := st.StoreStats()
			logger.Info("loaded snapshot", "path", cfg.snapshot, "rows", st.Rows(), "shards", stats.Shards)
			if cfg.shards > 1 && stats.Shards != cfg.shards {
				logger.Info("snapshot topology overrides -shards",
					"snapshot_shards", stats.Shards, "flag_shards", cfg.shards)
			}
			return st, nil
		}
	}
	schema, err := parseSchema(cfg.schema)
	if err != nil {
		return nil, err
	}
	if cfg.shards > 1 {
		key := cfg.key
		if key == "" {
			key = schema[0].Name
		}
		return hyrise.NewShardedTable(cfg.table, schema, key, cfg.shards)
	}
	return hyrise.NewTable(cfg.table, schema)
}

// parseSchema turns "id:uint64,qty:uint32,product:string" into a Schema.
func parseSchema(spec string) (hyrise.Schema, error) {
	var schema hyrise.Schema
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, typ, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("bad column spec %q (want name:type)", field)
		}
		var ct hyrise.Type
		switch typ {
		case "uint32":
			ct = hyrise.Uint32
		case "uint64":
			ct = hyrise.Uint64
		case "string":
			ct = hyrise.String
		default:
			return nil, fmt.Errorf("column %q: unknown type %q", name, typ)
		}
		schema = append(schema, hyrise.ColumnDef{Name: name, Type: ct})
	}
	if len(schema) == 0 {
		return nil, errors.New("empty -schema")
	}
	return schema, nil
}
