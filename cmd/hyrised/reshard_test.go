package main

import (
	"context"
	"testing"
	"time"

	"hyrise/client"
)

// TestReshardAdminMode starts a daemon, grows it from 2 to 8 active
// shards with the -reshard admin mode (a second run invocation acting as
// a client), and checks the live topology and data through the protocol.
func TestReshardAdminMode(t *testing.T) {
	cfg := config{
		addr:          "127.0.0.1:0",
		table:         "sales",
		schema:        "k:uint64,v:uint64",
		shards:        2,
		mergeFraction: -1,
		compact:       false,
		drain:         15 * time.Second,
	}
	addr, stopDaemon := startDaemon(t, cfg)

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const rows = 500
	batch := make([][]any, rows)
	for i := range batch {
		batch[i] = []any{uint64(i), uint64(i)}
	}
	if _, err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}

	admin := config{addr: addr, reshard: 8, drain: time.Second}
	if err := run(context.Background(), admin, testLogger(t)); err != nil {
		t.Fatalf("hyrised -reshard 8: %v", err)
	}

	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 8 || stats.Partitions != 10 || stats.Resharding {
		t.Fatalf("post-reshard topology = %+v", stats)
	}
	for _, k := range []uint64{0, 250, 499} {
		ids, err := c.Lookup("k", k)
		if err != nil || len(ids) != 1 {
			t.Fatalf("Lookup(%d) = %v, %v", k, ids, err)
		}
	}
	if err := stopDaemon(); err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}
}
