package main

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hyrise/client"
)

// waitFollowerApplied polls the follower daemon's replication stats until
// its applied epoch reaches e.
func waitFollowerApplied(t *testing.T, fc *client.Client, e uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := fc.ServerStats()
		if err != nil {
			t.Fatalf("follower stats: %v", err)
		}
		if st.AppliedEpoch >= e {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at epoch %d, want %d", st.AppliedEpoch, e)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHyrisedReplication is the replication acceptance test at the daemon
// level: a -replicate primary and a -follow follower run in-process,
// concurrent writers churn key-moving updates through the primary while a
// pooled client (Followers configured) routes pinned-snapshot reads; every
// routed read must be exact at its snapshot's epoch.  The follower daemon
// is then restarted and must re-bootstrap and converge, and after the
// writers quiesce the follower's own pinned reads must match the primary's
// bit for bit.
func TestHyrisedReplication(t *testing.T) {
	pcfg := config{
		addr:          "127.0.0.1:0",
		table:         "sales",
		schema:        "k:uint64,id:uint64,v:uint64",
		shards:        4,
		replicate:     true,
		mergeFraction: 0.01,
		mergeInterval: time.Millisecond,
		compact:       true,
		drain:         15 * time.Second,
	}
	paddr, stopPrimary := startDaemon(t, pcfg)
	fcfg := config{
		addr:          "127.0.0.1:0",
		follow:        paddr,
		mergeFraction: 0.01,
		mergeInterval: time.Millisecond,
		drain:         15 * time.Second,
	}
	faddr, stopFollower := startDaemon(t, fcfg)

	fc, err := client.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if fc.Role() != client.RoleFollower {
		t.Fatalf("follower daemon announced role %v", fc.Role())
	}
	if _, err := fc.Insert([]any{uint64(1), uint64(1), uint64(1)}); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("write on follower daemon: %v, want ErrReadOnly", err)
	}

	// Writers churn key-moving updates through the primary.
	const (
		writers = 3
		idsEach = 32
	)
	stopCh := make(chan struct{})
	var wg, seeded sync.WaitGroup
	seeded.Add(writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(paddr)
			if err != nil {
				t.Errorf("writer %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			base := uint64(w * idsEach)
			rows := make([][]any, idsEach)
			for i := range rows {
				id := base + uint64(i)
				rows[i] = []any{id * 13, id, e2eChecksum(id, id*13)}
			}
			gids, err := c.InsertBatch(rows)
			seeded.Done()
			if err != nil {
				t.Errorf("writer %d: seed: %v", w, err)
				return
			}
			seq := uint64(w + 1)
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				for i := range gids {
					seq = seq*6364136223846793005 + 1442695040888963407
					id := base + uint64(i)
					nk := seq % (1 << 14)
					ngid, err := c.Update(gids[i], map[string]any{
						"k": nk, "v": e2eChecksum(id, nk),
					})
					if err != nil {
						t.Errorf("writer %d: update: %v", w, err)
						return
					}
					gids[i] = ngid
				}
			}
		}(w)
	}

	// A pooled reader routes pinned-snapshot reads to the follower; every
	// read must be exact at the snapshot's epoch regardless of which server
	// answered.
	seeded.Wait()
	if t.Failed() {
		close(stopCh)
		wg.Wait()
		return
	}
	rc, err := client.DialOptions(paddr, client.Options{
		Followers:    []string{faddr},
		MaxStaleness: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	readRound := func(r int, wait bool) {
		snap, err := rc.Snapshot()
		if err != nil {
			t.Fatalf("round %d: snapshot: %v", r, err)
		}
		defer rc.Release(snap)
		if wait {
			// Let the follower apply the snapshot's epoch so the routed
			// reads below exercise it (fallback would also be correct).
			if e, ok := rc.SnapshotEpoch(snap); ok {
				waitFollowerApplied(t, fc, e)
			}
		}
		n, err := rc.ValidRowsAt(snap)
		if err != nil {
			t.Fatalf("round %d: valid rows: %v", r, err)
		}
		if n != writers*idsEach {
			t.Fatalf("round %d: %d valid rows, want %d", r, n, writers*idsEach)
		}
		res, err := rc.QueryAt(snap, []client.Filter{
			{Column: "id", Op: client.Between, Value: uint64(0), Hi: uint64(writers * idsEach)},
		}, []string{"k", "id", "v"})
		if err != nil {
			t.Fatalf("round %d: query: %v", r, err)
		}
		var sum uint64
		for _, vals := range res.Values {
			k, id, v := vals[0].(uint64), vals[1].(uint64), vals[2].(uint64)
			if v != e2eChecksum(id, k) {
				t.Fatalf("round %d: torn row %v", r, vals)
			}
			sum += v
		}
		got, err := rc.SumAt(snap, "v")
		if err != nil {
			t.Fatalf("round %d: sum: %v", r, err)
		}
		if got != sum {
			t.Fatalf("round %d: SumAt %d != row sum %d", r, got, sum)
		}
	}
	for r := 0; r < 8; r++ {
		readRound(r, true)
	}

	// Restart the follower daemon: it must re-bootstrap from the primary
	// and converge again; routed reads keep working throughout (falling
	// back to the primary while it is down).
	if err := stopFollower(); err != nil {
		t.Fatalf("follower stop: %v", err)
	}
	fc.Close()
	readRound(100, false)
	fcfg.addr = "127.0.0.1:0"
	faddr2, stopFollower2 := startDaemon(t, fcfg)
	if fc, err = client.Dial(faddr2); err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Quiesce, then the follower's own pinned reads must match the
	// primary's exactly.
	close(stopCh)
	wg.Wait()
	if t.Failed() {
		return
	}
	pc, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	psnap, err := pc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Release(psnap)
	e, _ := pc.SnapshotEpoch(psnap)
	psum, err := pc.SumAt(psnap, "v")
	if err != nil {
		t.Fatal(err)
	}
	pn, err := pc.ValidRowsAt(psnap)
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerApplied(t, fc, e)
	fsnap, err := fc.Snapshot() // pins the follower at its applied epoch
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Release(fsnap)
	fsum, err := fc.SumAt(fsnap, "v")
	if err != nil {
		t.Fatal(err)
	}
	fn, err := fc.ValidRowsAt(fsnap)
	if err != nil {
		t.Fatal(err)
	}
	if fsum != psum || fn != pn {
		t.Fatalf("follower diverged: sum %d/%d rows %d/%d", fsum, psum, fn, pn)
	}

	if err := stopFollower2(); err != nil {
		t.Fatalf("follower stop: %v", err)
	}
	if err := stopPrimary(); err != nil {
		t.Fatalf("primary stop: %v", err)
	}
}

// TestFollowFlagValidation pins the -follow flag's exclusions.
func TestFollowFlagValidation(t *testing.T) {
	logger := testLogger(t)
	if err := run(context.Background(), config{follow: "x", replicate: true}, logger); err == nil {
		t.Fatal("follow+replicate accepted")
	}
	if err := run(context.Background(), config{follow: "x", snapshot: "y"}, logger); err == nil {
		t.Fatal("follow+snapshot accepted")
	}
}
