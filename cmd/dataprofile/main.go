// Command dataprofile regenerates the paper's §2 enterprise data analyses
// (Figures 1-4) from the synthetic SAP-customer-system profiles.
//
// Usage:
//
//	dataprofile          # all four figures
//	dataprofile -fig 2   # only Figure 2
package main

import (
	"flag"
	"fmt"
	"os"

	"hyrise/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 1-4 (0 = all)")
	flag.Parse()

	ids := []string{"fig1", "fig2", "fig3", "fig4"}
	if *fig != 0 {
		if *fig < 1 || *fig > 4 {
			fmt.Fprintln(os.Stderr, "dataprofile: -fig must be 1..4")
			os.Exit(2)
		}
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	}
	scale := bench.Scale{}.Defaults()
	for i, id := range ids {
		e, _ := bench.ByID(id)
		if i > 0 {
			fmt.Println()
		}
		if err := e.Run(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "dataprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
