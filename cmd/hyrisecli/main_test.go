package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyrise"
)

func newShell() (*shell, *bytes.Buffer) {
	var buf bytes.Buffer
	return &shell{tables: map[string]hyrise.Store{}, shards: 1, out: bufio.NewWriter(&buf)}, &buf
}

func newShardedShell(shards int) (*shell, *bytes.Buffer) {
	var buf bytes.Buffer
	return &shell{tables: map[string]hyrise.Store{}, shards: shards, out: bufio.NewWriter(&buf)}, &buf
}

func run(t *testing.T, sh *shell, buf *bytes.Buffer, lines ...string) string {
	t.Helper()
	for _, line := range lines {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	sh.out.Flush()
	return buf.String()
}

func TestShellLifecycle(t *testing.T) {
	sh, buf := newShell()
	out := run(t, sh, buf,
		"create sales id:uint64 qty:uint32 product:string",
		"insert sales 1 3 widget",
		"insert sales 2 5 gadget",
		"lookup sales id 1",
		"merge sales",
		"lookup sales product gadget",
		"stats sales",
		"sum sales qty",
	)
	for _, want := range []string{
		"created sales with 3 columns",
		"row 0",
		"1 row(s)",
		"merged 2 delta rows",
		"table sales: 2 rows",
		"8", // sum(qty) = 3+5
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellShardedLifecycle(t *testing.T) {
	sh, buf := newShardedShell(4)
	out := run(t, sh, buf,
		"create sales id:uint64 qty:uint32 product:string",
		"insert sales 1 3 widget",
		"insert sales 2 5 gadget",
		"insert sales 3 7 widget",
		"lookup sales product widget",
		"merge sales",
		"lookup sales product widget",
		"range sales id 1 2",
		"stats sales",
		"sum sales qty",
		"workload sales id oltp 100",
	)
	for _, want := range []string{
		"created sales with 3 columns across 4 shards (keyed by id)",
		"merged 3 delta rows across 4 shards",
		"across 4 shards",
		"shard 0",
		"15", // sum(qty) = 3+5+7
		"100 ops in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "2 row(s)") != 3 {
		t.Errorf("expected widget lookups (before and after merge) and the range to each find 2 rows:\n%s", out)
	}
}

// TestShellShardedSaveLoad saves a sharded table and reloads it in a shell
// started without -shards: the topology is auto-detected from the snapshot
// header, not from the shell's creation default.
func TestShellShardedSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sharded.hyr")
	sh, buf := newShardedShell(4)
	out := run(t, sh, buf,
		"create sales id:uint64 qty:uint32 product:string",
		"insert sales 1 3 widget",
		"insert sales 2 5 gadget",
		"insert sales 3 7 widget",
		"merge sales",
		"insert sales 4 2 widget",
		"save sales "+path,
	)
	if !strings.Contains(out, "saved "+path) {
		t.Fatalf("save output:\n%s", out)
	}

	flat, buf2 := newShell()
	out2 := run(t, flat, buf2,
		"load sales2 "+path,
		"lookup sales2 product widget",
		"sum sales2 qty",
		"stats sales2",
		"merge sales2",
	)
	for _, want := range []string{
		"loaded sales2: 4 rows across 4 shards (keyed by id)",
		"3 row(s)",        // widget lookup finds rows from main and delta
		"\n17\n",          // sum(qty) = 3+5+7+2
		"shard 0",         // stats shows the per-shard breakdown
		"across 4 shards", // merge fans out over the reloaded topology
	} {
		if !strings.Contains(out2, want) {
			t.Errorf("output missing %q:\n%s", want, out2)
		}
	}
}

func TestShellUpdateDelete(t *testing.T) {
	sh, buf := newShell()
	out := run(t, sh, buf,
		"create t a:uint64",
		"insert t 7",
		"update t 0 a=9",
		"lookup t a 9",
		"delete t 1",
		"lookup t a 9",
	)
	if !strings.Contains(out, "row 0 -> 1") {
		t.Errorf("update output:\n%s", out)
	}
	// After delete, the lookup returns 0 rows.
	if !strings.Contains(out, "0 row(s)") {
		t.Errorf("delete not observed:\n%s", out)
	}
}

func TestShellRange(t *testing.T) {
	sh, buf := newShell()
	out := run(t, sh, buf,
		"create t a:uint64",
		"insert t 10",
		"insert t 20",
		"insert t 30",
		"range t a 15 30",
	)
	if !strings.Contains(out, "2 row(s)") {
		t.Errorf("range output:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newShell()
	for _, line := range []string{
		"bogus",
		"create",
		"create t a:floatz",
		"insert missing 1",
		"lookup t a 1", // table does not exist
		"merge nope",
		"sum t a",
		"workload t a badmix 1",
	} {
		if err := sh.exec(line); err == nil {
			t.Errorf("%q: expected error", line)
		}
	}
}

func TestShellSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.hyr")
	sh, buf := newShell()
	out := run(t, sh, buf,
		"create t a:uint64 b:string",
		"insert t 1 x",
		"insert t 2 y",
		"save t "+path,
		"load t2 "+path,
		"lookup t2 b y",
	)
	if !strings.Contains(out, "loaded t2: 2 rows") {
		t.Errorf("load output:\n%s", out)
	}
	if !strings.Contains(out, "1 row(s)") {
		t.Errorf("query on loaded table:\n%s", out)
	}
}

func TestShellLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "orders.csv")
	csv := "id,product\n1,widget\n2,gadget\n3,widget\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	sh, buf := newShell()
	out := run(t, sh, buf,
		"loadcsv orders "+path,
		"lookup orders product widget",
		"merge orders",
		"lookup orders product widget",
	)
	if !strings.Contains(out, "imported 3 rows into orders") {
		t.Errorf("import output:\n%s", out)
	}
	if strings.Count(out, "2 row(s)") != 2 {
		t.Errorf("lookup before/after merge:\n%s", out)
	}
}

func TestShellWorkload(t *testing.T) {
	sh, buf := newShell()
	out := run(t, sh, buf,
		"create t k:uint64",
		"insert t 1",
		"workload t k oltp 200",
	)
	if !strings.Contains(out, "200 ops in") {
		t.Errorf("workload output:\n%s", out)
	}
}
