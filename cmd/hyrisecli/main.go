// Command hyrisecli is a small interactive shell over the hyrise library:
// create tables, insert and query rows, trigger merges, inspect storage
// statistics and save/load snapshots.  Every command works identically on
// flat and sharded tables through the unified Store surface.
//
//	$ hyrisecli
//	> create sales id:uint64 qty:uint32 product:string
//	> insert sales 1 3 widget
//	> lookup sales id 1
//	> merge sales
//	> stats sales
//	> save sales /tmp/sales.hyr
//	> quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hyrise"
)

type shell struct {
	tables map[string]hyrise.Store
	snaps  map[string]hyrise.ReadView // last captured snapshot per table
	shards int                        // shard count for newly created tables (1 = flat)
	out    *bufio.Writer
}

func main() {
	shards := flag.Int("shards", 1, "hash-partition created tables across N shards (keyed by the first column)")
	flag.Parse()
	sh := &shell{tables: map[string]hyrise.Store{}, snaps: map[string]hyrise.ReadView{},
		shards: *shards, out: bufio.NewWriter(os.Stdout)}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("hyrise delta-merge column store — type 'help'")
	if sh.shards > 1 {
		fmt.Printf("creating tables with %d shards\n", sh.shards)
	}
	for {
		fmt.Print("> ")
		os.Stdout.Sync()
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := sh.exec(line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
		sh.out.Flush()
	}
}

func (s *shell) exec(line string) error {
	args := strings.Fields(line)
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "help":
		s.help()
		return nil
	case "create":
		return s.create(rest)
	case "insert":
		return s.insert(rest)
	case "update":
		return s.update(rest)
	case "delete":
		return s.del(rest)
	case "lookup":
		return s.lookup(rest)
	case "range":
		return s.rng(rest)
	case "sum":
		return s.sum(rest)
	case "merge":
		return s.merge(rest)
	case "snapshot":
		return s.snapshot(rest)
	case "stats":
		return s.stats(rest)
	case "save":
		return s.save(rest)
	case "load":
		return s.load(rest)
	case "loadcsv":
		return s.loadcsv(rest)
	case "workload":
		return s.workload(rest)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func (s *shell) help() {
	fmt.Fprint(s.out, `commands:
  create <table> <col:type>...    types: uint32 uint64 string
  insert <table> <values>...      one value per column
  update <table> <row> <col>=<v>  insert-only update (new version)
  delete <table> <row>            invalidate a row
  lookup <table> <col> <value> [snap]  key lookup
  range  <table> <col> <lo> <hi> [snap] range select (numeric columns)
  sum    <table> <col> [snap]     aggregate a numeric column
  merge  <table> [naive]          run the merge process
  snapshot <table>                capture a consistent read view; later
                                  reads with a trailing 'snap' argument
                                  run against it, frozen across merges
                                  and updates (even cross-shard)
  stats  <table>                  storage statistics
  save   <table> <path>           write binary snapshot (any topology)
  load   <name> <path>            read binary snapshot (topology
                                  auto-detected from the header)
  loadcsv <name> <path.csv>       import CSV (header row, types inferred)
  workload <table> <col> <mix> <n>  run n ops of mix oltp|olap|tpcc
  quit

started with -shards N > 1, 'create' hash-partitions tables across N
shards keyed by the first column; every command above works the same on
flat and sharded tables.  'snapshot' captures one epoch across ALL
shards atomically, so snap reads are cross-shard consistent.
`)
}

func (s *shell) table(name string) (hyrise.Store, error) {
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return t, nil
}

func (s *shell) create(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: create <table> <col:type>...")
	}
	var schema hyrise.Schema
	for _, spec := range args[1:] {
		name, typ, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("bad column spec %q", spec)
		}
		var ct hyrise.Type
		switch typ {
		case "uint32":
			ct = hyrise.Uint32
		case "uint64":
			ct = hyrise.Uint64
		case "string":
			ct = hyrise.String
		default:
			return fmt.Errorf("unknown type %q", typ)
		}
		schema = append(schema, hyrise.ColumnDef{Name: name, Type: ct})
	}
	if s.shards > 1 {
		st, err := hyrise.NewShardedTable(args[0], schema, schema[0].Name, s.shards)
		if err != nil {
			return err
		}
		s.setTable(args[0], st)
		fmt.Fprintf(s.out, "created %s with %d columns across %d shards (keyed by %s)\n",
			args[0], len(schema), s.shards, schema[0].Name)
		return nil
	}
	t, err := hyrise.NewTable(args[0], schema)
	if err != nil {
		return err
	}
	s.setTable(args[0], t)
	fmt.Fprintf(s.out, "created %s with %d columns\n", args[0], len(schema))
	return nil
}

func (s *shell) parseValue(t hyrise.Store, col int, raw string) (any, error) {
	switch t.Schema()[col].Type {
	case hyrise.Uint32:
		v, err := strconv.ParseUint(raw, 10, 32)
		return uint32(v), err
	case hyrise.Uint64:
		v, err := strconv.ParseUint(raw, 10, 64)
		return v, err
	default:
		return raw, nil
	}
}

func (s *shell) insert(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: insert <table> <values>...")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	if len(args)-1 != len(t.Schema()) {
		return fmt.Errorf("need %d values", len(t.Schema()))
	}
	row := make([]any, len(t.Schema()))
	for i, raw := range args[1:] {
		if row[i], err = s.parseValue(t, i, raw); err != nil {
			return err
		}
	}
	id, err := t.Insert(row)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "row %d\n", id)
	return nil
}

func (s *shell) update(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: update <table> <row> <col>=<value>")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	row, err := strconv.Atoi(args[1])
	if err != nil {
		return err
	}
	col, raw, ok := strings.Cut(args[2], "=")
	if !ok {
		return fmt.Errorf("usage: update <table> <row> <col>=<value>")
	}
	ci := -1
	for i, def := range t.Schema() {
		if def.Name == col {
			ci = i
		}
	}
	if ci < 0 {
		return fmt.Errorf("no column %q", col)
	}
	v, err := s.parseValue(t, ci, raw)
	if err != nil {
		return err
	}
	nr, err := t.Update(row, map[string]any{col: v})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "row %d -> %d\n", row, nr)
	return nil
}

func (s *shell) del(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: delete <table> <row>")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	row, err := strconv.Atoi(args[1])
	if err != nil {
		return err
	}
	return t.Delete(row)
}

// view resolves an optional trailing "snap" argument to the table's last
// captured snapshot; without it reads run latest (zero ReadView).
func (s *shell) view(name string, args []string, n int) (hyrise.ReadView, []string, error) {
	if len(args) == n+1 {
		if args[n] != "snap" {
			return hyrise.ReadView{}, nil, fmt.Errorf("unknown argument %q (did you mean 'snap'?)", args[n])
		}
		v, ok := s.snaps[name]
		if !ok {
			return hyrise.ReadView{}, nil, fmt.Errorf("no snapshot for %q (run: snapshot %s)", name, name)
		}
		return v, args[:n], nil
	}
	return hyrise.ReadView{}, args, nil
}

// setTable installs (or replaces) a table and drops any snapshot captured
// on the table previously bound to the name: a ReadView's epoch is only
// meaningful against the clock of the store that captured it.  The old
// view's GC pin is released with it.
func (s *shell) setTable(name string, t hyrise.Store) {
	s.tables[name] = t
	if v, ok := s.snaps[name]; ok {
		v.Release()
		delete(s.snaps, name)
	}
}

func (s *shell) snapshot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: snapshot <table>")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	// Re-snapshotting replaces the previous view; release its GC pin so
	// only the latest capture holds history.
	if old, ok := s.snaps[args[0]]; ok {
		old.Release()
	}
	v := t.Snapshot()
	s.snaps[args[0]] = v
	fmt.Fprintf(s.out, "snapshot of %s at epoch %d (%d rows visible)\n",
		args[0], v.Epoch(), t.ValidRowsAt(v))
	return nil
}

func (s *shell) lookup(args []string) error {
	if len(args) != 3 && len(args) != 4 {
		return fmt.Errorf("usage: lookup <table> <col> <value> [snap]")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	view, args, err := s.view(args[0], args, 3)
	if err != nil {
		return err
	}
	rows, err := lookupAny(t, view, args[1], args[2])
	if err != nil {
		return err
	}
	return s.printRows(t, rows)
}

// lookupTyped probes the column through the unified handle.
func lookupTyped[V hyrise.Value](t hyrise.Store, view hyrise.ReadView, col string, v V) ([]int, error) {
	h, err := hyrise.ColumnOf[V](t, col)
	if err != nil {
		return nil, err
	}
	return h.LookupAt(view, v), nil
}

func lookupAny(t hyrise.Store, view hyrise.ReadView, col, raw string) ([]int, error) {
	for _, def := range t.Schema() {
		if def.Name != col {
			continue
		}
		switch def.Type {
		case hyrise.Uint32:
			v, err := strconv.ParseUint(raw, 10, 32)
			if err != nil {
				return nil, err
			}
			return lookupTyped(t, view, col, uint32(v))
		case hyrise.Uint64:
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				return nil, err
			}
			return lookupTyped(t, view, col, v)
		default:
			return lookupTyped(t, view, col, raw)
		}
	}
	return nil, fmt.Errorf("no column %q", col)
}

func (s *shell) rng(args []string) error {
	if len(args) != 4 && len(args) != 5 {
		return fmt.Errorf("usage: range <table> <col> <lo> <hi> [snap]")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	view, args, err := s.view(args[0], args, 4)
	if err != nil {
		return err
	}
	lo, err := strconv.ParseUint(args[2], 10, 64)
	if err != nil {
		return err
	}
	hi, err := strconv.ParseUint(args[3], 10, 64)
	if err != nil {
		return err
	}
	h, err := hyrise.ColumnOf[uint64](t, args[1])
	if err != nil {
		return err
	}
	return s.printRows(t, h.RangeAt(view, lo, hi))
}

func (s *shell) printRows(t hyrise.Store, rows []int) error {
	for _, r := range rows {
		vals, err := t.Row(r)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%6d  %v\n", r, vals)
	}
	fmt.Fprintf(s.out, "%d row(s)\n", len(rows))
	return nil
}

func (s *shell) sum(args []string) error {
	if len(args) != 2 && len(args) != 3 {
		return fmt.Errorf("usage: sum <table> <col> [snap]")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	view, args, err := s.view(args[0], args, 2)
	if err != nil {
		return err
	}
	for _, def := range t.Schema() {
		if def.Name != args[1] {
			continue
		}
		var (
			sum uint64
			err error
		)
		switch def.Type {
		case hyrise.Uint32:
			sum, err = sumTyped[uint32](t, view, args[1])
		case hyrise.Uint64:
			sum, err = sumTyped[uint64](t, view, args[1])
		default:
			return fmt.Errorf("sum needs a numeric column")
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%d\n", sum)
		return nil
	}
	return fmt.Errorf("no column %q", args[1])
}

func sumTyped[V interface{ ~uint32 | ~uint64 }](t hyrise.Store, view hyrise.ReadView, col string) (uint64, error) {
	h, err := hyrise.NumericColumnOf[V](t, col)
	if err != nil {
		return 0, err
	}
	return h.SumAt(view), nil
}

func (s *shell) merge(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: merge <table> [naive]")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	opts := hyrise.MergeOptions{}
	if len(args) > 1 && args[1] == "naive" {
		opts.Algorithm = hyrise.Naive
	}
	rep, err := t.RequestMerge(context.Background(), opts)
	if err != nil {
		return err
	}
	if shards := t.StoreStats().Shards; shards > 1 {
		fmt.Fprintf(s.out, "merged %d delta rows across %d shards in %s (%d threads total)\n",
			rep.RowsMerged, shards, rep.Wall, rep.Threads)
	} else {
		fmt.Fprintf(s.out, "merged %d delta rows into %d main rows in %s (%v, %d threads)\n",
			rep.RowsMerged, rep.MainRowsAfter, rep.Wall, rep.Algorithm, rep.Threads)
	}
	return nil
}

func (s *shell) stats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: stats <table>")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	st := t.StoreStats()
	if st.Shards > 1 {
		fmt.Fprintf(s.out, "table %s: %d rows (%d valid) across %d shards, main %d, delta %d, %d bytes\n",
			st.Name, st.Rows, st.ValidRows, st.Shards, st.MainRows, st.DeltaRows, st.SizeBytes)
		for i, ts := range st.Partitions {
			fmt.Fprintf(s.out, "  shard %-3d %d rows (%d valid), main %d, delta %d, %d bytes\n",
				i, ts.Rows, ts.ValidRows, ts.MainRows, ts.DeltaRows, ts.SizeBytes)
		}
		return nil
	}
	fmt.Fprintf(s.out, "table %s: %d rows (%d valid), main %d, delta %d, %d bytes\n",
		st.Name, st.Rows, st.ValidRows, st.MainRows, st.DeltaRows, st.SizeBytes)
	for _, c := range st.Partitions[0].Columns {
		fmt.Fprintf(s.out, "  %-16s %-7v main=%d delta=%d uniq=%d/%d bits=%d size=%d\n",
			c.Def.Name, c.Def.Type, c.MainRows, c.DeltaRows,
			c.UniqueMain, c.UniqueDelta, c.Bits, c.SizeBytes)
	}
	return nil
}

func (s *shell) save(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: save <table> <path>")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	if err := hyrise.SaveFile(t, args[1]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved %s\n", args[1])
	return nil
}

func (s *shell) load(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: load <name> <path>")
	}
	t, err := hyrise.LoadFile(args[1])
	if err != nil {
		return err
	}
	s.setTable(args[0], t)
	if st := t.StoreStats(); st.Shards > 1 {
		fmt.Fprintf(s.out, "loaded %s: %d rows across %d shards (keyed by %s)\n",
			args[0], t.Rows(), st.Shards, st.KeyColumn)
	} else {
		fmt.Fprintf(s.out, "loaded %s: %d rows\n", args[0], t.Rows())
	}
	return nil
}

func (s *shell) loadcsv(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: loadcsv <name> <path.csv>")
	}
	t, n, err := hyrise.LoadCSVFile(args[1], hyrise.CSVOptions{TableName: args[0]})
	if err != nil {
		return err
	}
	s.setTable(args[0], t)
	fmt.Fprintf(s.out, "imported %d rows into %s (%d columns)\n", n, args[0], len(t.Schema()))
	return nil
}

func (s *shell) workload(args []string) error {
	if len(args) != 4 {
		return fmt.Errorf("usage: workload <table> <col> oltp|olap|tpcc <n>")
	}
	t, err := s.table(args[0])
	if err != nil {
		return err
	}
	var mix hyrise.Mix
	switch args[2] {
	case "oltp":
		mix = hyrise.OLTPMix
	case "olap":
		mix = hyrise.OLAPMix
	case "tpcc":
		mix = hyrise.TPCCMix
	default:
		return fmt.Errorf("unknown mix %q", args[2])
	}
	n, err := strconv.Atoi(args[3])
	if err != nil {
		return err
	}
	drv, err := hyrise.NewDriver(t, args[1], mix, hyrise.NewUniformGenerator(10000, 1), 1)
	if err != nil {
		return err
	}
	c, err := drv.Run(n)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%d ops in %s (%.0f ops/s): %d reads, %d writes\n",
		c.Total(), c.Duration, float64(c.Total())/c.Duration.Seconds(),
		c.Reads(), c.Writes())
	return nil
}
