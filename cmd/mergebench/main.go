// Command mergebench regenerates the paper's evaluation artifacts
// (Figures 7-9, Table 2, the §2 merge-duration estimate and the §7.4 model
// comparison) at a configurable scale.
//
// Usage:
//
//	mergebench -list
//	mergebench -exp fig7 -scale 0.05
//	mergebench -exp all -scale 0.01 -threads 8
//
// Scale 1.0 reproduces the paper's tuple counts (NM up to 100M per column
// for Figures 7/8; Figure 9 sweeps to 1B, which needs ~16 GB per column —
// reduce the scale accordingly).  Cycle figures use -hz (default 3.3 GHz,
// the paper's clock) so cycles/tuple are comparable across machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hyrise/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		factor  = flag.Float64("scale", 0.05, "tuple-count scale relative to the paper (1.0 = paper)")
		threads = flag.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
		hz      = flag.Float64("hz", 3.3e9, "clock rate for cycle conversion")
		nc      = flag.Int("nc", 300, "assumed column count for update-rate figures")
		llc     = flag.Int("llc", 0, "last-level cache bytes (0 = detect)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-10s %-22s %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	scale := bench.Scale{
		Factor:   *factor,
		Threads:  *threads,
		HZ:       *hz,
		NC:       *nc,
		LLCBytes: *llc,
	}.Defaults()

	var ids []string
	if *exp == "all" {
		for _, e := range bench.Registry() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for i, id := range ids {
		e, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "mergebench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.Title, e.ID)
		start := time.Now()
		if err := e.Run(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "mergebench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %s)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
