package hyrise_test

import (
	"bytes"
	"context"
	"testing"

	"hyrise"
)

// TestPublicAPIEndToEnd walks the full public surface the way the README
// quick start does: create, write, query, merge, schedule, persist.
func TestPublicAPIEndToEnd(t *testing.T) {
	tb, err := hyrise.NewTable("sales", hyrise.Schema{
		{Name: "order_id", Type: hyrise.Uint64},
		{Name: "qty", Type: hyrise.Uint32},
		{Name: "product", Type: hyrise.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := tb.Insert([]any{uint64(i), uint32(i % 10), "widget"}); err != nil {
			t.Fatal(err)
		}
	}
	r0, err := tb.Update(0, map[string]any{"qty": uint32(99)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(1); err != nil {
		t.Fatal(err)
	}

	rep, err := tb.Merge(context.Background(), hyrise.MergeOptions{Algorithm: hyrise.Optimized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsMerged != 1001 {
		t.Fatalf("RowsMerged=%d", rep.RowsMerged)
	}

	h, err := hyrise.ColumnOf[uint64](tb, "order_id")
	if err != nil {
		t.Fatal(err)
	}
	if rows := h.Lookup(0); len(rows) != 1 || rows[0] != r0 {
		t.Fatalf("Lookup(0)=%v want [%d] (updated version only)", rows, r0)
	}
	if rows := h.Lookup(1); len(rows) != 0 {
		t.Fatalf("Lookup(1)=%v want deleted", rows)
	}
	if rows := h.Range(10, 19); len(rows) != 10 {
		t.Fatalf("Range=%d rows", len(rows))
	}

	nh, err := hyrise.NumericColumnOf[uint32](tb, "qty")
	if err != nil {
		t.Fatal(err)
	}
	if mx, ok := nh.Max(); !ok || mx != 99 {
		t.Fatalf("Max=%d,%v", mx, ok)
	}

	// Workload driver on the public surface.
	drv, err := hyrise.NewDriver(tb, "order_id", hyrise.OLTPMix,
		hyrise.NewUniformGenerator(1000, 7), 7)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := drv.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 500 {
		t.Fatalf("driver total %d", counts.Total())
	}

	// Persistence round trip.
	var buf bytes.Buffer
	if err := hyrise.Save(tb, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := hyrise.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rows() != tb.Rows() || loaded.ValidRows() != tb.ValidRows() {
		t.Fatal("persistence round trip mismatch")
	}

	// Scheduler on the public surface.
	s := hyrise.NewScheduler(tb, hyrise.SchedulerConfig{Fraction: 0.5})
	if s.ShouldMerge() && tb.DeltaRows() == 0 {
		t.Fatal("scheduler trigger on empty delta")
	}

	// Model prediction.
	pred := hyrise.Predict(hyrise.ModelWorkload{
		NM: 100_000_000, ND: 1_000_000, Ej: 8,
		UM: 1_000_000, UD: 10_000, UPrime: 1_005_000, NC: 300,
	}, hyrise.PaperArch(), true)
	if pred.TotalCycles() <= 0 {
		t.Fatal("model prediction")
	}

	// Experiment registry.
	if len(hyrise.Experiments()) < 10 {
		t.Fatalf("experiments: %d", len(hyrise.Experiments()))
	}
	if _, ok := hyrise.ExperimentByID("fig7"); !ok {
		t.Fatal("fig7 missing")
	}
}

func TestGeneratorsPublic(t *testing.T) {
	g := hyrise.NewGeneratorForUniqueFraction(10_000, 0.1, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		seen[g.Next()] = true
	}
	if len(seen) < 500 || len(seen) > 2000 {
		t.Fatalf("distinct=%d want ~1000", len(seen))
	}
	u := hyrise.NewUniqueGenerator(2)
	a, b := u.Next(), u.Next()
	if a == b {
		t.Fatal("unique generator repeated")
	}
	z := hyrise.NewZipfGenerator(100, 1.5, 3)
	if z.Next() >= 100 {
		t.Fatal("zipf domain")
	}
}
