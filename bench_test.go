// Benchmarks regenerating the paper's evaluation artifacts with testing.B,
// one benchmark family per table and figure.  Sizes are reduced relative to
// the paper so `go test -bench=.` completes in minutes; `cmd/mergebench`
// runs the same experiments at configurable scale with the paper's exact
// parameter grids and prints the corresponding rows.
//
//	Figure 7  -> BenchmarkFigure7UpdateCost
//	Figure 8  -> BenchmarkFigure8ValueLength
//	Figure 9  -> BenchmarkFigure9UpdateRate
//	Table 2   -> BenchmarkTable2Scalability
//	§2 (VBAP) -> BenchmarkSec2MergeDuration
//	Figure 1  -> BenchmarkFigure1WorkloadMixes
//	Figures 2-4 are data analyses; their generators are benchmarked by
//	BenchmarkCustomerSystemProfile.
package hyrise_test

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"hyrise"
	"hyrise/internal/colstore"
	"hyrise/internal/core"
	"hyrise/internal/delta"
	"hyrise/internal/workload"
)

// benchColumn builds a main partition and a list of delta values outside
// the timed region.
func benchColumn(nm, nd int, uniqueFrac float64, seed int64) (*colstore.Main[uint64], []uint64) {
	gen := workload.NewUniformForUniqueFraction(nm, uniqueFrac, seed)
	vals := workload.Fill(gen, nm)
	m := colstore.FromValues(vals)
	dgen := workload.NewUniformForUniqueFraction(nd, uniqueFrac, seed+1)
	return m, workload.Fill(dgen, nd)
}

func fillDelta(vals []uint64) *delta.Partition[uint64] {
	d := delta.New[uint64]()
	for _, v := range vals {
		d.Insert(v)
	}
	return d
}

// BenchmarkFigure7UpdateCost reproduces Figure 7's sweep: update cost for
// varying delta sizes, unoptimized vs optimized merge (both parallel).
// NM is 2M (paper: 100M) with 10% unique 8-byte values.
func BenchmarkFigure7UpdateCost(b *testing.B) {
	const nm = 2_000_000
	for _, nd := range []int{20_000, 80_000, 160_000} {
		m, dv := benchColumn(nm, nd, 0.10, 7)
		for _, alg := range []core.Algorithm{core.Naive, core.Optimized} {
			name := fmt.Sprintf("delta=%d/alg=%v", nd, alg)
			b.Run(name, func(b *testing.B) {
				d := fillDelta(dv)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st := core.MergeColumn(m, d, core.Options{Algorithm: alg})
					b.ReportMetric(st.CyclesPerTuple(st.Total(), 3.3e9), "cycles/tuple")
				}
			})
		}
	}
}

// BenchmarkFigure8ValueLength reproduces Figure 8: update cost vs
// value-length (4, 8, 16 bytes) at 1% and 100% unique values.
func BenchmarkFigure8ValueLength(b *testing.B) {
	const nm, nd = 1_000_000, 50_000
	for _, unique := range []float64{0.01, 1.0} {
		gen := workload.NewUniformForUniqueFraction(nm, unique, 3)
		mainVals := workload.Fill(gen, nm)
		dgen := workload.NewUniformForUniqueFraction(nd, unique, 4)
		deltaVals := workload.Fill(dgen, nd)

		b.Run(fmt.Sprintf("unique=%g/Ej=4", unique), func(b *testing.B) {
			mv := make([]uint32, nm)
			for i, v := range mainVals {
				mv[i] = uint32(v)
			}
			m := colstore.FromValues(mv)
			d := delta.New[uint32]()
			for _, v := range deltaVals {
				d.Insert(uint32(v))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MergeColumn(m, d, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("unique=%g/Ej=8", unique), func(b *testing.B) {
			m := colstore.FromValues(mainVals)
			d := fillDelta(deltaVals)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MergeColumn(m, d, core.Options{})
			}
		})
		b.Run(fmt.Sprintf("unique=%g/Ej=16", unique), func(b *testing.B) {
			m := colstore.FromValues(workload.Strings(mainVals))
			d := delta.New[string]()
			for _, v := range deltaVals {
				d.Insert(workload.FixedString(v))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MergeColumn(m, d, core.Options{})
			}
		})
	}
}

// BenchmarkFigure9UpdateRate reproduces Figure 9's grid: main size x
// unique fraction with the delta fixed at 1% of main.  The reported
// updates/s metric assumes the paper's 300-column table.
func BenchmarkFigure9UpdateRate(b *testing.B) {
	for _, nm := range []int{500_000, 2_000_000, 8_000_000} {
		for _, uniquePct := range []float64{0.1, 1, 10, 100} {
			nd := nm / 100
			m, dv := benchColumn(nm, nd, uniquePct/100, int64(nm))
			b.Run(fmt.Sprintf("NM=%d/unique=%g%%", nm, uniquePct), func(b *testing.B) {
				d := fillDelta(dv)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st := core.MergeColumn(m, d, core.Options{})
					rate := float64(nd) / (st.Total().Seconds() * 300)
					b.ReportMetric(rate, "updates/s(NC=300)")
				}
			})
		}
	}
}

// BenchmarkTable2Scalability reproduces Table 2: per-step cost serial vs
// all cores at 1% and 100% unique.
func BenchmarkTable2Scalability(b *testing.B) {
	const nm, nd = 2_000_000, 20_000
	for _, unique := range []float64{0.01, 1.0} {
		m, dv := benchColumn(nm, nd, unique, 11)
		for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("unique=%g/threads=%d", unique, threads), func(b *testing.B) {
				d := fillDelta(dv)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, st := core.MergeColumn(m, d, core.Options{Threads: threads})
					b.ReportMetric(st.CyclesPerTuple(st.Step1(), 3.3e9), "step1-cpt")
					b.ReportMetric(st.CyclesPerTuple(st.Step2, 3.3e9), "step2-cpt")
				}
			})
		}
	}
}

// BenchmarkSec2MergeDuration reproduces the §2 VBAP scenario at reduced
// scale: a wide table merged through the table layer.
func BenchmarkSec2MergeDuration(b *testing.B) {
	const columns, rows, deltaRows = 23, 100_000, 2_500 // 1/10 columns, ~1/300 rows
	schema := hyrise.Schema{}
	for c := 0; c < columns; c++ {
		schema = append(schema, hyrise.ColumnDef{Name: fmt.Sprintf("c%d", c), Type: hyrise.Uint64})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb, err := hyrise.NewTable("vbap", schema)
		if err != nil {
			b.Fatal(err)
		}
		row := make([]any, columns)
		gen := hyrise.NewUniformGenerator(1000, int64(i))
		for r := 0; r < rows+deltaRows; r++ {
			for c := range row {
				row[c] = gen.Next()
			}
			if _, err := tb.Insert(row); err != nil {
				b.Fatal(err)
			}
			if r == rows-1 {
				if _, err := tb.Merge(context.Background(), hyrise.MergeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		rep, err := tb.Merge(context.Background(), hyrise.MergeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.RowsMerged != deltaRows {
			b.Fatalf("merged %d", rep.RowsMerged)
		}
	}
}

// BenchmarkFigure1WorkloadMixes measures end-to-end operation throughput
// of the three Figure 1 mixes against a live table.
func BenchmarkFigure1WorkloadMixes(b *testing.B) {
	for _, mix := range []hyrise.Mix{hyrise.OLTPMix, hyrise.OLAPMix, hyrise.TPCCMix} {
		b.Run(mix.Name, func(b *testing.B) {
			tb, err := hyrise.NewTable("t", hyrise.Schema{
				{Name: "k", Type: hyrise.Uint64},
				{Name: "v", Type: hyrise.Uint32},
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 50_000; i++ {
				tb.Insert([]any{uint64(i % 1000), uint32(i % 100)})
			}
			tb.Merge(context.Background(), hyrise.MergeOptions{})
			drv, err := hyrise.NewDriver(tb, "k", mix, hyrise.NewUniformGenerator(1000, 5), 5)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := drv.Run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCustomerSystemProfile measures the Figures 2-4 generator.
func BenchmarkCustomerSystemProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := workload.GenerateCustomerSystem(int64(i))
		if len(cs.Tables) != workload.TotalTables {
			b.Fatal("table count")
		}
	}
}

// shardCounts is the scaling axis of the sharded benchmarks: shards=1 is
// the flat-equivalent baseline the multi-shard rows are compared against.
var shardCounts = []int{1, 2, 4, 8}

func newShardedBench(b *testing.B, shards int) *hyrise.ShardedTable {
	b.Helper()
	st, err := hyrise.NewShardedTable("b", hyrise.Schema{
		{Name: "k", Type: hyrise.Uint64},
		{Name: "v", Type: hyrise.Uint64},
	}, "k", shards)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkShardedInsert measures concurrent insert throughput as shards
// scale: writers route by key hash and contend only on their own shard's
// lock, so ops/s should grow with the shard count.
func BenchmarkShardedInsert(b *testing.B) {
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := newShardedBench(b, shards)
			var next atomic.Uint64
			var insertErr atomic.Value
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := next.Add(1)
					if _, err := st.Insert([]any{k, k}); err != nil {
						insertErr.Store(err)
						return
					}
				}
			})
			if err := insertErr.Load(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkShardedMergeAll measures cross-shard merge wall time with one
// thread per shard, so the speedup comes purely from shard parallelism:
// shards=1 is a serial merge of the whole table, shards=8 is eight
// concurrent single-threaded merges of one-eighth-size partitions.  (With
// a full thread budget a 1-shard merge already parallelizes within
// columns — see BenchmarkTable2Scalability — so fixing the per-shard
// budget isolates the new axis.)
func BenchmarkShardedMergeAll(b *testing.B) {
	const nm, nd = 400_000, 20_000
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			opts := hyrise.MergeAllOptions{
				Merge: hyrise.MergeOptions{Threads: shards},
			}
			st := newShardedBench(b, shards)
			for i := 0; i < nm; i++ {
				if _, err := st.Insert([]any{uint64(i), uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := st.MergeAll(context.Background(), opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				base := uint64(nm + i*nd)
				for j := 0; j < nd; j++ {
					if _, err := st.Insert([]any{base + uint64(j), 1}); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				rep, err := st.MergeAll(context.Background(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if rep.RowsMerged != nd {
					b.Fatalf("merged %d want %d", rep.RowsMerged, nd)
				}
			}
		})
	}
}

// BenchmarkShardedLookup measures point-query latency on a merged table as
// shards scale: every lookup fans out to all shards in parallel, trading a
// little fan-out overhead for smaller per-shard dictionaries.
func BenchmarkShardedLookup(b *testing.B) {
	const rows = 1_000_000
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := newShardedBench(b, shards)
			for i := 0; i < rows; i++ {
				if _, err := st.Insert([]any{uint64(i), uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := st.MergeAll(context.Background(), hyrise.MergeAllOptions{}); err != nil {
				b.Fatal(err)
			}
			h, err := hyrise.ColumnOf[uint64](st, "k")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := h.Lookup(uint64(i % rows)); len(got) != 1 {
					b.Fatalf("lookup found %d rows", len(got))
				}
			}
		})
	}
}

// BenchmarkShardedWorkloadMix runs the paper's OLTP mix through the
// generalized driver against flat-equivalent and multi-shard tables.
func BenchmarkShardedWorkloadMix(b *testing.B) {
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := newShardedBench(b, shards)
			for i := 0; i < 50_000; i++ {
				st.Insert([]any{uint64(i % 1000), uint64(i)})
			}
			st.MergeAll(context.Background(), hyrise.MergeAllOptions{})
			drv, err := hyrise.NewDriver(st, "k", hyrise.OLTPMix,
				hyrise.NewUniformGenerator(1000, 5), 5)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := drv.Run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// snapshotScanShards is the scaling axis of the snapshot benchmarks.
var snapshotScanShards = []int{1, 4, 8}

// snapshotBenchStore builds a merged store with rows spread across shards
// plus a fresh delta tail, so scans cross main and delta partitions.
func snapshotBenchStore(b *testing.B, shards, rows int) hyrise.Store {
	b.Helper()
	var s hyrise.Store
	if shards == 1 {
		tb, err := hyrise.NewTable("b", hyrise.Schema{
			{Name: "k", Type: hyrise.Uint64},
			{Name: "v", Type: hyrise.Uint64},
		})
		if err != nil {
			b.Fatal(err)
		}
		s = tb
	} else {
		s = newShardedBench(b, shards)
	}
	for i := 0; i < rows; i++ {
		if _, err := s.Insert([]any{uint64(i), uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
		b.Fatal(err)
	}
	for i := rows; i < rows+rows/20; i++ {
		if _, err := s.Insert([]any{uint64(i), uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkSnapshotScan measures a full-column aggregate scan under a
// frozen snapshot view (capture + SumAt) as shards scale — the epoch-read
// path every consistent analytical query pays.
func BenchmarkSnapshotScan(b *testing.B) {
	const rows = 500_000
	for _, shards := range snapshotScanShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := snapshotBenchStore(b, shards, rows)
			h, err := hyrise.NumericColumnOf[uint64](s, "v")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view := s.Snapshot()
				if h.SumAt(view) == 0 {
					b.Fatal("empty sum")
				}
				view.Release()
			}
		})
	}
}

// BenchmarkSnapshotScanLatest is the locked-scan baseline: the same
// aggregate through the latest-read path (per-shard read locks, no view).
// Comparing against BenchmarkSnapshotScan isolates the epoch-filter cost.
func BenchmarkSnapshotScanLatest(b *testing.B) {
	const rows = 500_000
	for _, shards := range snapshotScanShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := snapshotBenchStore(b, shards, rows)
			h, err := hyrise.NumericColumnOf[uint64](s, "v")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if h.Sum() == 0 {
					b.Fatal("empty sum")
				}
			}
		})
	}
}

// BenchmarkSnapshotScanDuringMerge measures the snapshot scan while
// cross-shard merges continuously commit underneath: the view keeps the
// aggregate consistent and the scan only ever waits for the brief merge
// lock phases, not for whole merges.
func BenchmarkSnapshotScanDuringMerge(b *testing.B) {
	const rows = 200_000
	for _, shards := range snapshotScanShards {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := snapshotBenchStore(b, shards, rows)
			h, err := hyrise.NumericColumnOf[uint64](s, "v")
			if err != nil {
				b.Fatal(err)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				i := rows * 2
				for {
					select {
					case <-stop:
						return
					default:
					}
					for j := 0; j < 1000; j++ {
						s.Insert([]any{uint64(i), uint64(i)})
						i++
					}
					s.RequestMerge(context.Background(), hyrise.MergeOptions{Threads: 2})
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view := s.Snapshot()
				if h.SumAt(view) == 0 {
					b.Fatal("empty sum")
				}
				view.Release()
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}

// BenchmarkSnapshotCapture measures the capture itself: one atomic
// fetch-add on the shared clock, independent of shard count and row count.
func BenchmarkSnapshotCapture(b *testing.B) {
	s := snapshotBenchStore(b, 8, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot()
	}
}

// BenchmarkDeltaInsert measures the write path (T_U): CSB+ indexed
// appends, the per-update cost in Equation 1.
func BenchmarkDeltaInsert(b *testing.B) {
	for _, unique := range []float64{0.01, 1.0} {
		b.Run(fmt.Sprintf("unique=%g", unique), func(b *testing.B) {
			gen := workload.NewUniformForUniqueFraction(b.N+1, unique, 1)
			d := delta.New[uint64]()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Insert(gen.Next())
			}
		})
	}
}
