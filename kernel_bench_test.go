// BenchmarkScanKernel and BenchmarkParallelMerge are the perf-trajectory
// artifacts behind BENCH_kernels.json.
//
// BenchmarkScanKernel compares the pre-kernel scalar scan (a sequential
// bitpack.Reader decode with a per-row compare — exactly what
// colstore.Main.ScanEqual did before internal/kernel) against the
// word-at-a-time SWAR kernels on 8/16/32-bit packed columns, for both a
// sparse equality needle and a ~10% range predicate.  The acceptance bar
// is >= 2x single-thread throughput on the 8- and 16-bit columns.
//
// BenchmarkParallelMerge measures the range-partitioned garbage-collecting
// merge (core.MergeColumnGC) on one oversized column — the single-shard
// compaction bottleneck — with 1/4/8 worker threads and a ~30% drop mask,
// plus a store-level MergeAll over 1/4/8 shards with intra-column threads.
// Every sub-benchmark reports a "cpus" metric (GOMAXPROCS): thread counts
// above it cannot improve wall-clock time, so on a single-core runner the
// bar for threads=4/8 is parity with threads=1 (no parallel overhead);
// the disjoint output partitioning turns that into near-linear scaling
// once cores are available.
package hyrise_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hyrise"
	"hyrise/internal/bitpack"
	"hyrise/internal/colstore"
	"hyrise/internal/core"
	"hyrise/internal/delta"
	"hyrise/internal/kernel"
)

var benchSink int

func BenchmarkScanKernel(b *testing.B) {
	const n = 1 << 20
	for _, bits := range []uint{8, 16, 32} {
		rng := rand.New(rand.NewSource(int64(bits)))
		codes := make([]uint64, n)
		max := uint64(1)<<bits - 1
		for i := range codes {
			codes[i] = rng.Uint64() & max
		}
		needle := codes[n/2] // sparse: ~n/2^bits expected matches
		lo, hi := max/2, max/2+max/10+1
		v := bitpack.FromSlice(bits, codes)

		b.Run(fmt.Sprintf("bits=%d/op=equal/impl=scalar", bits), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				cnt := 0
				r := v.Reader()
				for j := 0; j < n; j++ {
					if r.Next() == needle {
						cnt++
					}
				}
				benchSink = cnt
			}
		})
		b.Run(fmt.Sprintf("bits=%d/op=equal/impl=kernel", bits), func(b *testing.B) {
			b.SetBytes(n)
			sel := make([]int32, 0, n)
			for i := 0; i < b.N; i++ {
				sel = kernel.MatchEqual(v, needle, sel[:0])
				benchSink = len(sel)
			}
		})
		b.Run(fmt.Sprintf("bits=%d/op=range/impl=scalar", bits), func(b *testing.B) {
			b.SetBytes(n)
			for i := 0; i < b.N; i++ {
				cnt := 0
				r := v.Reader()
				for j := 0; j < n; j++ {
					if c := r.Next(); c >= lo && c < hi {
						cnt++
					}
				}
				benchSink = cnt
			}
		})
		b.Run(fmt.Sprintf("bits=%d/op=range/impl=kernel", bits), func(b *testing.B) {
			b.SetBytes(n)
			sel := make([]int32, 0, n)
			for i := 0; i < b.N; i++ {
				sel = kernel.MatchRange(v, lo, hi, sel[:0])
				benchSink = len(sel)
			}
		})
	}
}

func BenchmarkParallelMerge(b *testing.B) {
	// Core level: one column far beyond any shard split, GC drop mask over
	// ~30% of the versions, thread counts 1/4/8.  The dictionary
	// cardinalities put the merged column at 8, 16 and ~19 packed bits
	// (a 32-bit code width would need a >2^31-entry dictionary).
	const n = 1 << 19
	rng := rand.New(rand.NewSource(17))
	for _, card := range []uint64{1 << 8, 1 << 16, 1 << 19} {
		mainVals := make([]uint64, n)
		for i := range mainVals {
			mainVals[i] = rng.Uint64() % card
		}
		m := colstore.FromValues(mainVals)
		d := delta.New[uint64]()
		for i := 0; i < n/8; i++ {
			d.Insert(rng.Uint64() % card)
		}
		drop := make([]bool, n+n/8)
		for i := range drop {
			drop[i] = rng.Float64() < 0.3
		}
		for _, nt := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("core/dict=%d/threads=%d", card, nt), func(b *testing.B) {
				b.SetBytes(n + n/8)
				var st core.Stats
				for i := 0; i < b.N; i++ {
					_, st = core.MergeColumnGC(m, d, drop, core.Options{Threads: nt})
				}
				b.ReportMetric(float64(st.BitsAfter), "bits")
				b.ReportMetric(float64(st.Dropped), "dropped")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
			})
		}
	}

	// Store level: the same update-then-compact cycle across 1/4/8 shards
	// with intra-column parallel merges on every shard.
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("store/shards=%d/threads=4", shards), func(b *testing.B) {
			const rows = 40_000
			s, err := hyrise.NewShardedTable("pm", hyrise.Schema{
				{Name: "k", Type: hyrise.Uint64},
				{Name: "v", Type: hyrise.Uint64},
			}, "k", shards)
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]int, rows)
			for i := range ids {
				if ids[i], err = s.Insert([]any{uint64(i), uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
			opts := hyrise.MergeOptions{Threads: 4, Strategy: hyrise.IntraColumn}
			if _, err := s.RequestMerge(context.Background(), opts); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < rows; j += 2 {
					nid, err := s.Update(ids[j], map[string]any{"v": uint64(i*rows + j)})
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = nid
				}
				b.StartTimer()
				if _, err := s.RequestMerge(context.Background(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
