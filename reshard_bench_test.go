// BenchmarkReshard is the perf-trajectory artifact behind
// BENCH_reshard.json: an online reshard of a 1M-row store from 1/4/8
// active shards to twice that count, with snapshot readers hammering the
// table throughout the migration.  ns/op is the end-to-end reshard wall
// time; the reported metrics expose what "online" costs the read path:
//
//	rows_migrated/op  row versions the migration pass relocated
//	seal_ns/op        the write-lock barrier that quiesced old-map writes
//	cutover_ns/op     the atomic routing publish
//	read_p50_ns/op    median pinned-read latency during the migration
//	read_p99_ns/op    p99 pinned-read latency during the migration
//	reads/op          pinned reads completed while the migration ran
//	failed_reads/op   reads that returned the wrong row count (must be 0)
package hyrise_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyrise"
)

func BenchmarkReshard(b *testing.B) {
	const rows = 1_000_000
	const readers = 4
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/rows=%d", shards, rows), func(b *testing.B) {
			var (
				totalSeal, totalCutover     time.Duration
				rowsMigrated, reads, failed int64
				lats                        []time.Duration
				latMu                       sync.Mutex
			)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := hyrise.NewShardedTable("b", hyrise.Schema{
					{Name: "k", Type: hyrise.Uint64},
					{Name: "v", Type: hyrise.Uint64},
				}, "k", shards)
				if err != nil {
					b.Fatal(err)
				}
				batch := make([][]any, 0, 10_000)
				for r := 0; r < rows; r++ {
					batch = append(batch, []any{uint64(r), uint64(r)})
					if len(batch) == cap(batch) {
						if _, err := s.InsertRows(batch); err != nil {
							b.Fatal(err)
						}
						batch = batch[:0]
					}
				}
				// Index the key so reader probes are posting-list copies,
				// not full column scans: an unindexed probe holds the
				// partition read lock for a whole vectorized scan, which
				// starves the migration's per-row write locks.  Reshard
				// re-creates the index on the fresh partitions, so probes
				// stay indexed through the cutover.
				if err := s.CreateIndex("k"); err != nil {
					b.Fatal(err)
				}
				if _, err := s.RequestMerge(context.Background(), hyrise.MergeOptions{}); err != nil {
					b.Fatal(err)
				}

				stop := make(chan struct{})
				var wg sync.WaitGroup
				for rd := 0; rd < readers; rd++ {
					wg.Add(1)
					go func(rd int) {
						defer wg.Done()
						for probe := 0; ; probe++ {
							select {
							case <-stop:
								return
							default:
							}
							key := uint64((rd*999_983 + probe*104_729) % rows)
							t0 := time.Now()
							snap := s.Snapshot()
							h, err := hyrise.ColumnOf[uint64](s, "k")
							if err != nil {
								b.Error(err)
								snap.Release()
								return
							}
							n := len(h.LookupAt(snap, key))
							snap.Release()
							d := time.Since(t0)
							atomic.AddInt64(&reads, 1)
							if n != 1 {
								atomic.AddInt64(&failed, 1)
							}
							latMu.Lock()
							lats = append(lats, d)
							latMu.Unlock()
						}
					}(rd)
				}

				b.StartTimer()
				rep, err := s.Reshard(context.Background(), shards*2)
				b.StopTimer()
				close(stop)
				wg.Wait()
				if err != nil {
					b.Fatal(err)
				}
				rowsMigrated += int64(rep.RowsMigrated)
				totalSeal += rep.SealWall
				totalCutover += rep.CutoverWall
				b.StartTimer()
			}
			b.StopTimer()

			n := float64(b.N)
			b.ReportMetric(float64(rowsMigrated)/n, "rows_migrated/op")
			b.ReportMetric(float64(totalSeal.Nanoseconds())/n, "seal_ns/op")
			b.ReportMetric(float64(totalCutover.Nanoseconds())/n, "cutover_ns/op")
			b.ReportMetric(float64(reads)/n, "reads/op")
			b.ReportMetric(float64(failed)/n, "failed_reads/op")
			if len(lats) > 0 {
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				p50 := lats[len(lats)/2]
				p99 := lats[len(lats)*99/100]
				b.ReportMetric(float64(p50.Nanoseconds()), "read_p50_ns/op")
				b.ReportMetric(float64(p99.Nanoseconds()), "read_p99_ns/op")
			}
		})
	}
}
